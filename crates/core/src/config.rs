//! System configuration (Table 1 of the paper).

use pfsim_cache::SlcConfig;
use pfsim_mem::{Geometry, PagePlacement};
use pfsim_network::MeshConfig;
use pfsim_prefetch::Scheme;

/// Which processors' read-miss streams to record for off-line analysis.
///
/// The paper's §5.1 characterization only considers "requests from one
/// processor ... which has been shown to be representative".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordMisses {
    /// Record nothing (fastest).
    #[default]
    None,
    /// Record the miss stream of one processor.
    Cpu(usize),
    /// Record every processor's miss stream.
    All,
}

/// The memory consistency model the processor enforces.
///
/// The paper assumes release consistency (§4): writes retire into the
/// write buffers and the processor only waits for them at releases. The
/// sequential-consistency mode is provided as an ablation of the paper's
/// §1 premise that "the latency of write accesses can easily be hidden by
/// appropriate write buffers and relaxed memory consistency models".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyModel {
    /// Writes are buffered; the processor stalls only at releases and
    /// full buffers (the paper's model).
    #[default]
    Release,
    /// Every write stalls the processor until it is globally performed.
    Sequential,
}

/// Full configuration of the simulated machine.
///
/// [`SystemConfig::paper_baseline`] reproduces Table 1; builder-style
/// methods derive variants (finite SLC, a different prefetching scheme,
/// …).
///
/// # Examples
///
/// ```
/// use pfsim::SystemConfig;
/// use pfsim_prefetch::Scheme;
///
/// let cfg = SystemConfig::paper_baseline()
///     .with_scheme(Scheme::Sequential { degree: 1 })
///     .with_finite_slc(16 * 1024);
/// assert_eq!(cfg.nodes, 16);
/// assert_eq!(cfg.flc_bytes, 4096);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SystemConfig {
    /// Number of processing nodes (16 in the paper).
    pub nodes: u16,
    /// Block and page sizes (32 B / 4 KB).
    pub geometry: Geometry,
    /// First-level cache capacity in bytes (4 KB).
    pub flc_bytes: u64,
    /// First-level write buffer entries (8).
    pub flwb_entries: usize,
    /// Second-level write buffer (MSHR) entries (16).
    pub slwb_entries: usize,
    /// Second-level cache capacity (infinite by default; 16 KB in §5.3).
    pub slc: SlcConfig,
    /// Prefetching scheme attached to each SLC.
    pub scheme: Scheme,
    /// Page-to-home-node placement (round-robin in the paper).
    pub placement: PagePlacement,
    /// Mesh dimensions and router timing.
    pub mesh: MeshConfig,
    /// SLC SRAM service time per access, in pclocks (30 ns SRAM = 3).
    pub slc_service: u64,
    /// FLC fill time, in pclocks (3).
    pub flc_fill: u64,
    /// Directory controller occupancy per request, in pclocks (throughput
    /// limit of the home engine).
    pub dir_occupancy: u64,
    /// Additional directory pipeline latency beyond the occupancy.
    pub dir_extra_latency: u64,
    /// Memory/bus occupancy per access: one 256-bit bus data cycle at
    /// 33 MHz (3 pclocks). The memory itself is fully interleaved, so
    /// throughput is bus-limited, not DRAM-limited.
    pub mem_occupancy: u64,
    /// Additional memory access latency beyond the occupied bus slot
    /// (90 ns DRAM plus the request bus cycle).
    pub mem_extra_latency: u64,
    /// Which processors' miss streams to record.
    pub record_misses: RecordMisses,
    /// The memory consistency model (release consistency in the paper).
    pub consistency: ConsistencyModel,
    /// Maximum pclocks a processor may run ahead of the global event loop
    /// before yielding (bounds timing skew of the inline fast path).
    pub cpu_slice: u64,
    /// Enables the observability registry: event counts by kind,
    /// queue/MSHR occupancy histograms, server utilization and
    /// prefetcher telemetry, snapshotted into
    /// [`SimResult::metrics`](crate::SimResult::metrics). Purely
    /// observational — simulated timing (pclocks) is identical either
    /// way; disabled (the default) it costs one never-taken branch per
    /// event.
    pub instrument: bool,
}

impl SystemConfig {
    /// The paper's fixed architectural parameters (Table 1): 16 nodes,
    /// 4 KB FLC, 32-byte blocks, infinite SLC, 8/16-entry write buffers,
    /// 4×4 mesh, and latencies calibrated so that an FLC read takes
    /// 1 pclock, an SLC read 6 pclocks and a local memory read 28 pclocks
    /// end to end.
    pub fn paper_baseline() -> Self {
        SystemConfig {
            nodes: 16,
            geometry: Geometry::paper(),
            flc_bytes: 4096,
            flwb_entries: 8,
            slwb_entries: 16,
            slc: SlcConfig::infinite(),
            scheme: Scheme::None,
            placement: PagePlacement::round_robin(16),
            mesh: MeshConfig::paper(),
            slc_service: 3,
            flc_fill: 3,
            dir_occupancy: 2,
            dir_extra_latency: 2,
            mem_occupancy: 3,
            mem_extra_latency: 12,
            record_misses: RecordMisses::None,
            consistency: ConsistencyModel::Release,
            cpu_slice: 256,
            instrument: false,
        }
    }

    /// A typed builder starting from the paper baseline.
    ///
    /// # Examples
    ///
    /// ```
    /// use pfsim::SystemConfig;
    /// use pfsim_prefetch::Scheme;
    ///
    /// let cfg = SystemConfig::builder()
    ///     .scheme(Scheme::Sequential { degree: 1 })
    ///     .slc_kb(16)
    ///     .build();
    /// assert_eq!(cfg.scheme, Scheme::Sequential { degree: 1 });
    /// ```
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig::paper_baseline(),
        }
    }

    /// Uses the given consistency model (release consistency is the
    /// paper's assumption; sequential consistency is the ablation).
    pub fn with_consistency(mut self, consistency: ConsistencyModel) -> Self {
        self.consistency = consistency;
        self
    }

    /// Replaces the prefetching scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Uses a finite direct-mapped SLC of `bytes` (the §5.3 study uses
    /// 16 KB).
    pub fn with_finite_slc(mut self, bytes: u64) -> Self {
        self.slc = SlcConfig::direct_mapped(bytes);
        self
    }

    /// Uses a finite set-associative SLC with true LRU (extension beyond
    /// the paper's direct-mapped configuration).
    pub fn with_set_assoc_slc(mut self, bytes: u64, ways: usize) -> Self {
        self.slc = SlcConfig::set_associative(bytes, ways);
        self
    }

    /// Uses coherence blocks of `bytes` (both cache levels), scaling the
    /// memory/bus occupancy with the payload (the 256-bit bus moves 32
    /// bytes per 3-pclock bus cycle). The paper "pessimistically"
    /// evaluates 32-byte blocks and notes larger blocks favour sequential
    /// prefetching; the `ablation_block` experiment measures that.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a power of two dividing the page size.
    pub fn with_block_bytes(mut self, bytes: u64) -> Self {
        self.geometry = Geometry::new(bytes, self.geometry.page_bytes());
        self.mem_occupancy = 3 * bytes.div_ceil(32);
        self
    }

    /// Enables miss-stream recording.
    pub fn with_recording(mut self, record: RecordMisses) -> Self {
        self.record_misses = record;
        self
    }

    /// Enables (or disables) the observability registry.
    pub fn with_instrumentation(mut self, on: bool) -> Self {
        self.instrument = on;
        self
    }

    /// Scales the machine to a `width`×`height` mesh, updating the node
    /// count and the round-robin page placement coherently (the paper
    /// stops at 4×4; the scaling study runs 8×8 and 16×16).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the mesh exceeds the
    /// directory's presence-vector limit
    /// ([`pfsim_coherence::MAX_SHARERS`]).
    pub fn with_mesh_dims(mut self, width: u16, height: u16) -> Self {
        let nodes = width
            .checked_mul(height)
            .filter(|&n| (1..=pfsim_coherence::MAX_SHARERS as u16).contains(&n))
            .unwrap_or_else(|| {
                // pfsim-lint: allow(K002) -- configuration-time validation
                panic!(
                    "{width}x{height} mesh needs 1..={} nodes",
                    pfsim_coherence::MAX_SHARERS
                )
            });
        self.nodes = nodes;
        self.mesh = MeshConfig::dims(width, height);
        self.placement = PagePlacement::round_robin(nodes);
        self
    }

    /// The end-to-end latency of a read serviced by the SLC, in pclocks
    /// (derived: SLC service + FLC fill = 6 in the paper configuration).
    pub fn slc_read_latency(&self) -> u64 {
        self.slc_service + self.flc_fill
    }

    /// The end-to-end latency of a read serviced by idle local memory, in
    /// pclocks (derived: 28 in the paper configuration).
    pub fn local_memory_read_latency(&self) -> u64 {
        // SLC miss detection + directory + bus/memory + SLC fill pass +
        // FLC fill.
        self.slc_service
            + self.dir_occupancy
            + self.dir_extra_latency
            + self.mem_occupancy
            + self.mem_extra_latency
            + self.slc_service
            + self.flc_fill
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_baseline()
    }
}

/// Typed builder for [`SystemConfig`], produced by
/// [`SystemConfig::builder`].
///
/// Starts from [`SystemConfig::paper_baseline`] and applies the studied
/// variations by name, so experiment code never mutates configuration
/// fields positionally.
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Selects the prefetching scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Uses a finite direct-mapped SLC of `kb` kilobytes (§5.3 uses 16).
    pub fn slc_kb(mut self, kb: u64) -> Self {
        self.cfg.slc = SlcConfig::direct_mapped(kb * 1024);
        self
    }

    /// Uses the paper's default infinite SLC.
    pub fn slc_infinite(mut self) -> Self {
        self.cfg.slc = SlcConfig::infinite();
        self
    }

    /// Uses a finite set-associative SLC with true LRU.
    pub fn slc_set_assoc(mut self, kb: u64, ways: usize) -> Self {
        self.cfg.slc = SlcConfig::set_associative(kb * 1024, ways);
        self
    }

    /// Uses coherence blocks of `bytes`, scaling the bus occupancy (see
    /// [`SystemConfig::with_block_bytes`]).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a power of two dividing the page size.
    pub fn block_bytes(mut self, bytes: u64) -> Self {
        self.cfg = self.cfg.with_block_bytes(bytes);
        self
    }

    /// Scales the machine to a `width`×`height` mesh, updating the node
    /// count and the round-robin page placement coherently (the paper
    /// stops at 4×4; the scaling study runs 8×8 and 16×16).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the mesh exceeds the
    /// directory's presence-vector limit
    /// ([`pfsim_coherence::MAX_SHARERS`]).
    pub fn mesh_dims(mut self, width: u16, height: u16) -> Self {
        self.cfg = self.cfg.with_mesh_dims(width, height);
        self
    }

    /// Selects the memory consistency model.
    pub fn consistency(mut self, model: ConsistencyModel) -> Self {
        self.cfg.consistency = model;
        self
    }

    /// Enables miss-stream recording.
    pub fn record_misses(mut self, record: RecordMisses) -> Self {
        self.cfg.record_misses = record;
        self
    }

    /// Enables (or disables) the observability registry.
    pub fn instrument(mut self, on: bool) -> Self {
        self.cfg.instrument = on;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> SystemConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table_1() {
        let c = SystemConfig::paper_baseline();
        assert_eq!(c.nodes, 16);
        assert_eq!(c.flc_bytes, 4096);
        assert_eq!(c.geometry.block_bytes(), 32);
        assert_eq!(c.flwb_entries, 8);
        assert_eq!(c.slwb_entries, 16);
        assert_eq!(c.mesh.nodes(), 16);
        assert_eq!(c.slc_read_latency(), 6);
        assert_eq!(c.local_memory_read_latency(), 28);
    }

    #[test]
    fn typed_builder_composes() {
        let c = SystemConfig::builder()
            .scheme(Scheme::DDetection { degree: 2 })
            .slc_kb(16)
            .consistency(ConsistencyModel::Sequential)
            .record_misses(RecordMisses::Cpu(5))
            .instrument(true)
            .build();
        assert_eq!(c.scheme, Scheme::DDetection { degree: 2 });
        assert_eq!(c.slc, SlcConfig::direct_mapped(16 * 1024));
        assert_eq!(c.consistency, ConsistencyModel::Sequential);
        assert_eq!(c.record_misses, RecordMisses::Cpu(5));
        assert!(c.instrument);

        let c = SystemConfig::builder()
            .slc_set_assoc(16, 4)
            .block_bytes(64)
            .slc_infinite()
            .build();
        assert_eq!(c.slc, SlcConfig::infinite());
        assert_eq!(c.geometry.block_bytes(), 64);
        assert_eq!(c.mem_occupancy, 6);
    }

    #[test]
    fn mesh_dims_scales_nodes_and_placement() {
        let c = SystemConfig::builder().mesh_dims(8, 8).build();
        assert_eq!(c.nodes, 64);
        assert_eq!(c.mesh, MeshConfig::dims(8, 8));
        assert_eq!(c.placement, PagePlacement::round_robin(64));
        // Router timing is unchanged from the paper's mesh.
        assert_eq!(c.mesh.fall_through, MeshConfig::paper().fall_through);

        let c = SystemConfig::builder().mesh_dims(16, 16).build();
        assert_eq!(c.nodes, 256);
    }

    #[test]
    #[should_panic(expected = "mesh needs")]
    fn mesh_dims_rejects_oversized_meshes() {
        let _ = SystemConfig::builder().mesh_dims(32, 32);
    }

    #[test]
    fn builder_methods_compose() {
        let c = SystemConfig::paper_baseline()
            .with_scheme(Scheme::IDetection { degree: 1 })
            .with_finite_slc(16 * 1024)
            .with_recording(RecordMisses::Cpu(0));
        assert_eq!(c.scheme, Scheme::IDetection { degree: 1 });
        assert_eq!(c.slc, SlcConfig::direct_mapped(16 * 1024));
        assert_eq!(c.record_misses, RecordMisses::Cpu(0));
    }
}
