//! Statistics collected by the full-system simulator.

use pfsim_coherence::DirStats;
use pfsim_engine::MetricsSnapshot;
use pfsim_mem::{BlockAddr, Pc};
use pfsim_network::NetStats;

/// Why a read miss happened at the SLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissCause {
    /// First reference to the block by this node.
    Cold,
    /// The block was previously invalidated by the coherence protocol.
    Coherence,
    /// The block was previously displaced by a conflicting fill (finite
    /// SLC only).
    Replacement,
}

/// One recorded read miss, for off-line §5.1-style characterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissRecord {
    /// Program counter of the missing load.
    pub pc: Pc,
    /// Byte address of the access (block-aligned analysis derives the
    /// block itself).
    pub addr: pfsim_mem::Addr,
    /// Block that missed.
    pub block: BlockAddr,
    /// Miss classification.
    pub cause: MissCause,
}

/// Per-node counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Shared-data loads issued.
    pub reads: u64,
    /// Shared-data stores issued.
    pub writes: u64,
    /// Loads that hit the FLC.
    pub flc_read_hits: u64,
    /// Loads that missed the FLC but hit the SLC.
    pub slc_read_hits: u64,
    /// Of those, hits on prefetched-tagged blocks.
    pub tagged_hits: u64,
    /// Demand read misses: the block was absent with no transaction in
    /// flight (the paper's "number of read misses").
    pub read_misses: u64,
    /// Demand reads that merged into an in-flight transaction (stall
    /// shortened, block arriving). Reads merging into an in-flight
    /// *prefetch* also count the prefetch as useful.
    pub delayed_hits: u64,
    /// Cycles the processor was stalled on reads beyond the 1-pclock FLC
    /// access (the paper's "read stall time").
    pub read_stall: u64,
    /// Cycles stalled acquiring locks or performing releases.
    pub sync_stall: u64,
    /// Cycles stalled on writes (zero under release consistency except
    /// for buffer-full stalls; the sequential-consistency ablation fills
    /// this in).
    pub write_stall: u64,
    /// Cycles stalled at barriers.
    pub barrier_stall: u64,
    /// Cycles stalled because the FLWB was full.
    pub flwb_stall: u64,
    /// Prefetch requests actually sent to the memory system.
    pub prefetches_issued: u64,
    /// Prefetched blocks consumed by a demand reference (tagged hits plus
    /// demand merges into in-flight prefetches).
    pub prefetches_useful: u64,
    /// Prefetch candidates dropped: block already in the SLC.
    pub pf_dropped_present: u64,
    /// Prefetch candidates dropped: transaction already in flight.
    pub pf_dropped_inflight: u64,
    /// Prefetch candidates dropped: SLWB full.
    pub pf_dropped_full: u64,
    /// Cold misses.
    pub cold_misses: u64,
    /// Coherence misses.
    pub coherence_misses: u64,
    /// Replacement misses.
    pub replacement_misses: u64,
    /// Invalidations received from the directory.
    pub invals_received: u64,
    /// Dirty blocks written back on replacement.
    pub writebacks: u64,
    /// `SlcWork` events that fired with nothing to do (stale wakeups left
    /// behind when an earlier event already serviced the queue). A
    /// scheduling-efficiency diagnostic: each one is a wasted trip through
    /// the event loop.
    pub spurious_slc_wakeups: u64,
}

impl NodeStats {
    /// Prefetch efficiency: useful / issued (1.0 when none were issued).
    pub fn prefetch_efficiency(&self) -> f64 {
        if self.prefetches_issued == 0 {
            1.0
        } else {
            self.prefetches_useful as f64 / self.prefetches_issued as f64
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Simulated execution time of the parallel section, in pclocks.
    pub exec_cycles: u64,
    /// Per-node counters.
    pub nodes: Vec<NodeStats>,
    /// Network traffic.
    pub net: NetStats,
    /// Aggregated directory statistics.
    pub dir: DirStats,
    /// Recorded miss streams (empty unless recording was enabled),
    /// indexed by node.
    pub miss_traces: Vec<Vec<MissRecord>>,
    /// Observability registry snapshot (`None` unless
    /// [`SystemConfig::instrument`](crate::SystemConfig) was set):
    /// event counts by kind, queue/MSHR occupancy histograms, server
    /// and link utilization, prefetcher telemetry.
    pub metrics: Option<MetricsSnapshot>,
}

impl SimResult {
    /// The Figure-6 aggregate metrics of this run, ready for
    /// [`pfsim_analysis::compare`].
    pub fn run_metrics(&self) -> pfsim_analysis::RunMetrics {
        pfsim_analysis::RunMetrics {
            read_misses: self.read_misses(),
            read_stall: self.read_stall(),
            prefetches_issued: self.total(|n| n.prefetches_issued),
            prefetches_useful: self.total(|n| n.prefetches_useful),
            flits: self.net.flits,
            exec_cycles: self.exec_cycles,
        }
    }

    /// The recorded miss stream of `cpu` as classifier input for
    /// [`pfsim_analysis::characterize`] (empty unless recording was
    /// enabled for that processor).
    pub fn miss_events(&self, cpu: usize) -> Vec<pfsim_analysis::MissEvent> {
        self.miss_traces[cpu]
            .iter()
            .map(|m| pfsim_analysis::MissEvent {
                pc: m.pc,
                block: m.block,
            })
            .collect()
    }

    /// Sum of a per-node counter over all nodes.
    pub fn total(&self, f: impl Fn(&NodeStats) -> u64) -> u64 {
        self.nodes.iter().map(f).sum()
    }

    /// Total demand read misses across all nodes.
    pub fn read_misses(&self) -> u64 {
        self.total(|n| n.read_misses)
    }

    /// Total `SlcWork` events that found nothing to do, across all nodes.
    pub fn spurious_slc_wakeups(&self) -> u64 {
        self.total(|n| n.spurious_slc_wakeups)
    }

    /// Total read stall cycles across all nodes.
    pub fn read_stall(&self) -> u64 {
        self.total(|n| n.read_stall)
    }

    /// System-wide prefetch efficiency (1.0 when nothing was prefetched).
    pub fn prefetch_efficiency(&self) -> f64 {
        let issued = self.total(|n| n.prefetches_issued);
        if issued == 0 {
            1.0
        } else {
            self.total(|n| n.prefetches_useful) as f64 / issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_handles_zero_issued() {
        let s = NodeStats::default();
        assert_eq!(s.prefetch_efficiency(), 1.0);
    }

    #[test]
    fn efficiency_ratio() {
        let s = NodeStats {
            prefetches_issued: 10,
            prefetches_useful: 7,
            ..Default::default()
        };
        assert!((s.prefetch_efficiency() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn result_totals_sum_nodes() {
        let r = SimResult {
            exec_cycles: 100,
            nodes: vec![
                NodeStats {
                    read_misses: 3,
                    ..Default::default()
                },
                NodeStats {
                    read_misses: 4,
                    ..Default::default()
                },
            ],
            net: Default::default(),
            dir: Default::default(),
            miss_traces: vec![],
            metrics: None,
        };
        assert_eq!(r.read_misses(), 7);
    }
}
