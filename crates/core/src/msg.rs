//! Inter-node messages.

use pfsim_coherence::DirRequest;
use pfsim_mem::{Addr, BlockAddr, NodeId};
use pfsim_network::MessageKind;

/// A message travelling between nodes over the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// Requester → home: a coherence request (read, read-exclusive,
    /// upgrade or writeback).
    CohReq {
        /// Target block.
        block: BlockAddr,
        /// The protocol request.
        req: DirRequest,
    },
    /// Home → owner: surrender your dirty copy (and invalidate it if
    /// `inval`).
    Fetch {
        /// Target block.
        block: BlockAddr,
        /// Whether the owner's copy is invalidated (write request) or
        /// downgraded (read request).
        inval: bool,
        /// The home node expecting the reply.
        home: NodeId,
    },
    /// Owner → home: fetch response. `had_copy` is false when the block
    /// was already evicted (its writeback is in flight).
    FetchReply {
        /// Target block.
        block: BlockAddr,
        /// Whether the owner still held (and supplied) the block.
        had_copy: bool,
    },
    /// Home → sharer: invalidate your copy.
    Inval {
        /// Target block.
        block: BlockAddr,
        /// The home node expecting the acknowledgement.
        home: NodeId,
    },
    /// Sharer → home: invalidation acknowledged.
    InvalAck {
        /// Target block.
        block: BlockAddr,
    },
    /// Home → requester: data reply.
    DataReply {
        /// Target block.
        block: BlockAddr,
        /// Whether ownership is granted.
        exclusive: bool,
        /// Whether the original request was a prefetch.
        prefetch: bool,
    },
    /// Home → requester: ownership granted without data (upgrade).
    AckReply {
        /// Target block.
        block: BlockAddr,
    },
    /// Requester → lock home: acquire the queue-based lock.
    LockReq {
        /// Lock address (its page determines the home).
        lock: Addr,
        /// Requesting node.
        from: NodeId,
    },
    /// Lock home → requester (or next waiter): the lock is yours.
    LockGrant {
        /// Lock address.
        lock: Addr,
    },
    /// Holder → lock home: release; the home hands the lock to the next
    /// queued waiter directly.
    UnlockReq {
        /// Lock address.
        lock: Addr,
        /// Releasing node.
        from: NodeId,
    },
    /// Node → barrier home: arrived at the barrier.
    BarrierArrive {
        /// Barrier identifier.
        id: u32,
        /// Arriving node.
        from: NodeId,
    },
    /// Barrier home → participant: everyone arrived, continue.
    BarrierRelease {
        /// Barrier identifier.
        id: u32,
    },
}

impl Msg {
    /// The network size class of the message: replies and writebacks carry
    /// a 32-byte block; everything else is header-only.
    pub fn kind(&self) -> MessageKind {
        match self {
            Msg::DataReply { .. } => MessageKind::Data,
            Msg::FetchReply { had_copy: true, .. } => MessageKind::Data,
            Msg::CohReq {
                req: DirRequest::Writeback { .. },
                ..
            } => MessageKind::Data,
            _ => MessageKind::Control,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_carrying_messages_are_sized_as_data() {
        let b = BlockAddr::new(1);
        assert_eq!(
            Msg::DataReply {
                block: b,
                exclusive: false,
                prefetch: false
            }
            .kind(),
            MessageKind::Data
        );
        assert_eq!(
            Msg::CohReq {
                block: b,
                req: DirRequest::Writeback {
                    from: NodeId::new(0)
                }
            }
            .kind(),
            MessageKind::Data
        );
        assert_eq!(
            Msg::FetchReply {
                block: b,
                had_copy: false
            }
            .kind(),
            MessageKind::Control
        );
        assert_eq!(
            Msg::CohReq {
                block: b,
                req: DirRequest::read_shared(NodeId::new(0))
            }
            .kind(),
            MessageKind::Control
        );
        assert_eq!(
            Msg::LockReq {
                lock: Addr::new(0),
                from: NodeId::new(0)
            }
            .kind(),
            MessageKind::Control
        );
    }
}
