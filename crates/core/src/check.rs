//! Correctness-observer hooks for online memory-consistency checking.
//!
//! The simulator is a *timing* model: it moves ownership and permissions,
//! not data values. A [`CheckSink`] installed with
//! [`System::set_check_sink`](crate::System::set_check_sink) receives a
//! callback at every event that moves simulated data — write issue, read
//! completion, cache fill, invalidation, directory memory access — which is
//! exactly enough for an external observer to maintain a *shadow* data
//! machine (who holds which value of every block) and check that each load
//! observes a write that release consistency and per-location coherence
//! permit. The `pfsim-check` crate implements such an oracle.
//!
//! Discipline (matching the instrumentation layer): the sink is opt-in and
//! `Option`-boxed, so the disabled path costs one branch per hook site;
//! hooks are read-only with respect to simulator state, so an installed
//! sink cannot perturb timing — pclock totals are identical with the
//! oracle on and off.

use pfsim_mem::{Addr, BlockAddr};
use std::any::Any;

/// Observer for the simulator's data-movement events.
///
/// All methods default to no-ops so sinks implement only what they need.
/// `cpu`/`home` are node indices; `block` identifiers are block-aligned.
/// See the method docs for exactly when each fires relative to the
/// protocol state change.
#[allow(unused_variables)]
pub trait CheckSink {
    // ---- processor side -------------------------------------------------

    /// CPU `cpu` issued a store to `addr` into its write buffer (FLWB).
    /// The store is globally invisible until `write_applied`.
    fn write_issued(&mut self, cpu: u16, addr: Addr) {}

    /// CPU `cpu` load of `addr` hit the first-level cache and completed
    /// immediately (no `read_request`/`read_completed` pair follows).
    fn read_flc_hit(&mut self, cpu: u16, addr: Addr) {}

    /// CPU `cpu` load of `addr` reached the second-level cache; the CPU
    /// blocks until `read_completed` fires for the containing block.
    fn read_request(&mut self, cpu: u16, addr: Addr) {}

    /// The blocked load of CPU `cpu` on `block` completed; the value
    /// observed is whatever the node's copy of the block holds *now*.
    fn read_completed(&mut self, cpu: u16, block: BlockAddr) {}

    /// A buffered store of CPU `cpu` to `addr` drained into an SLC line
    /// already held Modified: it is globally performed at this instant.
    fn write_applied(&mut self, cpu: u16, addr: Addr) {}

    /// A buffered store of CPU `cpu` to `addr` drained but the line is not
    /// writable; it performs when ownership arrives (`fill` exclusive or
    /// `promote` for the containing block).
    fn write_deferred(&mut self, cpu: u16, addr: Addr) {}

    // ---- SLC / protocol side -------------------------------------------

    /// Node `cpu` received a data reply and filled `block`
    /// (`exclusive`: writable). Deferred stores to the block perform now
    /// if exclusive.
    fn fill(&mut self, cpu: u16, block: BlockAddr, exclusive: bool) {}

    /// Node `cpu`'s Shared copy of `block` was promoted to Modified
    /// (upgrade acknowledged with the copy still present). Deferred
    /// stores to the block perform now.
    fn promote(&mut self, cpu: u16, block: BlockAddr) {}

    /// Node `cpu`'s upgrade of `block` was acknowledged but the copy was
    /// invalidated in flight; the node relinquishes the (dataless) grant
    /// and re-requests exclusively.
    fn promote_failed(&mut self, cpu: u16, block: BlockAddr) {}

    /// Node `cpu` evicted `block`; if `dirty`, a writeback carrying the
    /// node's data is on its way to the home.
    fn evict(&mut self, cpu: u16, block: BlockAddr, dirty: bool) {}

    /// Node `cpu` invalidated its copy of `block` on a protocol
    /// invalidation.
    fn invalidated(&mut self, cpu: u16, block: BlockAddr) {}

    /// Node `cpu`, owner of `block`, was asked to supply it to the home
    /// (`had_copy`: it still held the line; `inval`: the fetch also
    /// invalidates the owner's copy). If `had_copy`, the node's data is
    /// on its way to the home.
    fn fetch_supplied(&mut self, cpu: u16, block: BlockAddr, inval: bool, had_copy: bool) {}

    // ---- synchronization ------------------------------------------------

    /// CPU `cpu`'s release of `lock` left the write buffer: all its prior
    /// stores have performed (the drain gate guarantees it).
    fn release_drained(&mut self, cpu: u16, lock: Addr) {}

    /// CPU `cpu`'s arrival at barrier `id` left the write buffer: all its
    /// prior stores have performed.
    fn barrier_drained(&mut self, cpu: u16, id: u32) {}

    /// CPU `cpu` was granted `lock` (acquire completes: the releaser's
    /// pre-release stores are now required reading).
    fn lock_granted(&mut self, cpu: u16, lock: Addr) {}

    /// CPU `cpu` was released from barrier `id` (everyone's pre-barrier
    /// stores are now required reading).
    fn barrier_released(&mut self, cpu: u16, id: u32) {}

    // ---- directory / home side ------------------------------------------

    /// Home `home` starts a directory action batch for `block` (demand
    /// request or invalidation-ack arrival).
    fn home_begin(&mut self, home: u16, block: BlockAddr) {}

    /// Home `home` starts a batch for a writeback of `block` from node
    /// `from` (the writeback's data — if any — is consumed by this batch).
    fn home_begin_writeback(&mut self, home: u16, block: BlockAddr, from: u16) {}

    /// Home `home` starts a batch for an owner's fetch reply for `block`
    /// (`had_copy`: the reply carries the owner's data).
    fn home_begin_fetch(&mut self, home: u16, block: BlockAddr, had_copy: bool) {}

    /// Within the current batch: home read `block` from memory (subsequent
    /// data replies in this batch carry memory's value).
    fn home_read_memory(&mut self, block: BlockAddr) {}

    /// Within the current batch: home wrote the batch's staged data (the
    /// writeback or fetch-reply payload) to memory.
    fn home_write_memory(&mut self, block: BlockAddr) {}

    /// Within the current batch: home sent a data reply for `block` to
    /// node `to`, carrying the staged data (or memory's value if nothing
    /// was staged).
    fn home_send_data(&mut self, block: BlockAddr, to: u16) {}

    // ---- lifecycle -------------------------------------------------------

    /// The simulation ran to completion: all traffic quiesced.
    fn run_finished(&mut self) {}

    /// Deep-copies the sink mid-run so a checkpoint can capture observer
    /// state alongside machine state. A forked sink must continue from
    /// exactly the hook stream it has seen so far: restoring the snapshot
    /// and replaying the rest of the run produces the same verdict as a
    /// straight-through run. Sinks that cannot be duplicated return
    /// `None` (the default), which makes the whole system snapshot fail
    /// rather than silently dropping the observer.
    fn fork(&self) -> Option<Box<dyn CheckSink>> {
        None
    }

    /// Recovers the concrete sink after [`System::take_check_sink`]
    /// (`crate::System::take_check_sink`) for result extraction.
    // pfsim-lint: allow(C001, S102) -- downcast helper for harness result recovery, not a protocol hook
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}
