//! The conservative sharded event kernel: intra-run parallelism with
//! results bit-identical to the serial loop (`DESIGN.md` §12).
//!
//! # Shape
//!
//! Nodes are partitioned into contiguous shards, one per worker thread.
//! The leader owns the global `(time, seq)` event queue and pops *cycle
//! batches*: every event at the earliest pending cycle, in seq order.
//! Each event is routed to the worker that owns its node; workers execute
//! their sub-batches against node-local state only, logging every global
//! effect (schedules, sends, oracle hooks) instead of applying it. The
//! leader then replays each event's effect group in exact batch order
//! against the live queue, mesh and oracle.
//!
//! # Why this is bit-identical
//!
//! Every handler touches only its event's node plus the effect context
//! (the sharding invariant — `Ev::node` is the key, and `pfsim-lint`
//! pins the clock writes). Two events in one batch therefore commute on
//! node state unless they share a node, in which case the same worker
//! runs them in batch (= serial) order. Replaying effect groups in batch
//! order reproduces the serial kernel's sequence-number assignment, its
//! calendar-queue evolution, its per-link mesh FIFO order and its oracle
//! hook order exactly — so pclocks, stats, metrics snapshots and
//! `PFSIM_CHECK=1` verdicts all match the serial kernel bit-for-bit.
//!
//! The serial kernel's event *fusion* (continuing inline when the
//! scheduled event would pop next) is reproduced by elision-equivalent
//! marking: workers cannot see the global queue, so they always schedule
//! and tag the three fusion sites `fusable`. At replay the leader
//! re-evaluates the exact serial guard (`peek > at`, and the event is
//! the last of its batch) and marks the scheduled event; a marked event
//! pops as a singleton batch and is skipped by instrumentation and the
//! clock fold, exactly as if it had never existed — which is what the
//! serial kernel's fusion does.
//!
//! The cross-shard lookahead of classic conservative PDES appears here as
//! a checked invariant rather than a window size: every remote delivery
//! must arrive at least [`pfsim_network::MeshConfig::lookahead`] cycles
//! after it was sent (`debug_assert`ed at replay), which is what makes
//! the one-cycle batch horizon safe.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use pfsim_coherence::ActionBuf;
use pfsim_engine::{Cycle, EventQueue};
use pfsim_mem::{Addr, BlockAddr, NodeId};
use pfsim_network::{Mesh, MessageKind};
use pfsim_workloads::Workload;

use crate::check::CheckSink;
use crate::msg::Msg;
use crate::node::Node;
use crate::stats::SimResult;
use crate::system::{Core, Ev, Fx, Obs, System};
use crate::SystemConfig;

/// One global effect recorded by a worker, to be replayed by the leader
/// in deterministic order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Effect {
    /// Schedule `ev` at `at`. `fusable` marks the three serial fusion
    /// sites, whose guard the leader re-evaluates at replay.
    Schedule {
        /// Target cycle.
        at: Cycle,
        /// The event.
        ev: Ev,
        /// Whether the serial kernel might have elided this schedule.
        fusable: bool,
    },
    /// Reserve mesh bandwidth for `msg` and schedule its delivery.
    Send {
        /// Send cycle.
        at: Cycle,
        /// Source node.
        from: u16,
        /// Destination node.
        to: u16,
        /// The message (its kind determines the flit count).
        msg: Msg,
    },
    /// An oracle hook observed by the handler.
    Hook(HookRecord),
}

/// A deferred [`CheckSink`] call: the hook name plus its arguments,
/// recorded by a worker and delivered by the leader in serial order so
/// the oracle sees the exact serial call sequence under sharding.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)] // field names mirror the CheckSink method signatures
pub(crate) enum HookRecord {
    WriteIssued {
        cpu: u16,
        addr: Addr,
    },
    ReadFlcHit {
        cpu: u16,
        addr: Addr,
    },
    ReadRequest {
        cpu: u16,
        addr: Addr,
    },
    ReadCompleted {
        cpu: u16,
        block: BlockAddr,
    },
    WriteApplied {
        cpu: u16,
        addr: Addr,
    },
    WriteDeferred {
        cpu: u16,
        addr: Addr,
    },
    Fill {
        cpu: u16,
        block: BlockAddr,
        exclusive: bool,
    },
    Promote {
        cpu: u16,
        block: BlockAddr,
    },
    PromoteFailed {
        cpu: u16,
        block: BlockAddr,
    },
    Evict {
        cpu: u16,
        block: BlockAddr,
        dirty: bool,
    },
    Invalidated {
        cpu: u16,
        block: BlockAddr,
    },
    FetchSupplied {
        cpu: u16,
        block: BlockAddr,
        inval: bool,
        had_copy: bool,
    },
    ReleaseDrained {
        cpu: u16,
        lock: Addr,
    },
    BarrierDrained {
        cpu: u16,
        id: u32,
    },
    LockGranted {
        cpu: u16,
        lock: Addr,
    },
    BarrierReleased {
        cpu: u16,
        id: u32,
    },
    HomeBegin {
        home: u16,
        block: BlockAddr,
    },
    HomeBeginWriteback {
        home: u16,
        block: BlockAddr,
        from: u16,
    },
    HomeBeginFetch {
        home: u16,
        block: BlockAddr,
        had_copy: bool,
    },
    HomeReadMemory {
        block: BlockAddr,
    },
    HomeWriteMemory {
        block: BlockAddr,
    },
    HomeSendData {
        block: BlockAddr,
        to: u16,
    },
}

/// Delivers one recorded hook to the sink. This is the single point
/// where the simulator calls into [`CheckSink`] — the serial kernel
/// routes its live hooks through here too, so both kernels drive the
/// oracle through one audited surface.
pub(crate) fn replay_hook(sink: &mut dyn CheckSink, rec: HookRecord) {
    match rec {
        HookRecord::WriteIssued { cpu, addr } => sink.write_issued(cpu, addr),
        HookRecord::ReadFlcHit { cpu, addr } => sink.read_flc_hit(cpu, addr),
        HookRecord::ReadRequest { cpu, addr } => sink.read_request(cpu, addr),
        HookRecord::ReadCompleted { cpu, block } => sink.read_completed(cpu, block),
        HookRecord::WriteApplied { cpu, addr } => sink.write_applied(cpu, addr),
        HookRecord::WriteDeferred { cpu, addr } => sink.write_deferred(cpu, addr),
        HookRecord::Fill {
            cpu,
            block,
            exclusive,
        } => sink.fill(cpu, block, exclusive),
        HookRecord::Promote { cpu, block } => sink.promote(cpu, block),
        HookRecord::PromoteFailed { cpu, block } => sink.promote_failed(cpu, block),
        HookRecord::Evict { cpu, block, dirty } => sink.evict(cpu, block, dirty),
        HookRecord::Invalidated { cpu, block } => sink.invalidated(cpu, block),
        HookRecord::FetchSupplied {
            cpu,
            block,
            inval,
            had_copy,
        } => sink.fetch_supplied(cpu, block, inval, had_copy),
        HookRecord::ReleaseDrained { cpu, lock } => sink.release_drained(cpu, lock),
        HookRecord::BarrierDrained { cpu, id } => sink.barrier_drained(cpu, id),
        HookRecord::LockGranted { cpu, lock } => sink.lock_granted(cpu, lock),
        HookRecord::BarrierReleased { cpu, id } => sink.barrier_released(cpu, id),
        HookRecord::HomeBegin { home, block } => sink.home_begin(home, block),
        HookRecord::HomeBeginWriteback { home, block, from } => {
            sink.home_begin_writeback(home, block, from)
        }
        HookRecord::HomeBeginFetch {
            home,
            block,
            had_copy,
        } => sink.home_begin_fetch(home, block, had_copy),
        HookRecord::HomeReadMemory { block } => sink.home_read_memory(block),
        HookRecord::HomeWriteMemory { block } => sink.home_write_memory(block),
        HookRecord::HomeSendData { block, to } => sink.home_send_data(block, to),
    }
}

/// Epoch value signalling a worker to exit its loop.
const SHUTDOWN: u32 = u32::MAX;
/// `done` value a worker publishes when it panics, so the leader stops
/// waiting and fails loudly instead of hanging.
const POISONED: u32 = u32::MAX;

/// The leader→worker / worker→leader handshake for one worker.
///
/// Strict alternation: the leader writes the inbox (under the mutex),
/// then publishes a new `epoch`; the worker executes, then publishes
/// `done = epoch`. The mutex transfer orders the data; the atomics only
/// carry the turn signal.
struct Gate {
    epoch: AtomicU32,
    done: AtomicU32,
}

/// The mutex-protected half of a worker's mailbox.
struct WorkerIo {
    /// Events for this round, in batch order: `(cycle, event)`.
    inbox: Vec<(Cycle, Ev)>,
    /// Flat effect log for the round; one contiguous group per event.
    effects: Vec<Effect>,
    /// Per executed event: (exclusive end index into `effects`, MSHR
    /// occupancy of the event's node when the event started — the exact
    /// value the serial kernel samples at pop time).
    ends: Vec<(u32, u32)>,
}

/// One worker's shared mailbox.
struct Cell {
    gate: Gate,
    io: Mutex<WorkerIo>,
}

impl Cell {
    fn new() -> Self {
        Cell {
            gate: Gate {
                epoch: AtomicU32::new(0),
                done: AtomicU32::new(0),
            },
            io: Mutex::new(WorkerIo {
                inbox: Vec::new(),
                effects: Vec::new(),
                ends: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, WorkerIo> {
        // A worker that panicked poisons the mutex on the way out; the
        // leader detects that through `done == POISONED` and panics
        // itself, so recovering the data here is always safe.
        self.io.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Spin-waits until `pred(atomic)` holds, yielding the CPU after a short
/// burst so a single-core host (or an oversubscribed one) still makes
/// progress through its scheduler.
fn wait_until(atomic: &AtomicU32, pred: impl Fn(u32) -> bool) -> u32 {
    let mut spins = 0u32;
    loop {
        let v = atomic.load(Ordering::Acquire);
        if pred(v) {
            return v;
        }
        spins += 1;
        if spins < 128 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Publishes [`POISONED`] if the worker unwinds, so the leader's wait
/// terminates with a diagnostic instead of spinning forever. Disarmed
/// (forgotten) on clean shutdown.
struct PoisonOnPanic<'a>(&'a AtomicU32);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        self.0.store(POISONED, Ordering::Release);
    }
}

/// The per-run constants a round needs: the config, the first node
/// index of the executing shard, and the two mode flags.
#[derive(Clone, Copy)]
struct RoundCtx<'a> {
    cfg: &'a SystemConfig,
    base: usize,
    check_on: bool,
    instrumented: bool,
}

/// Executes one round's inbox against the worker's node slice, filling
/// the effect log. Shared by the worker threads and the `threads <= 1`
/// inline path so the two can never diverge.
fn execute_round<W: Workload>(
    ctx: RoundCtx<'_>,
    nodes: &mut [Node],
    workload: &mut W,
    dir_actions: &mut ActionBuf,
    io: &mut WorkerIo,
) {
    io.effects.clear();
    io.ends.clear();
    for &(t, ev) in &io.inbox {
        let mshr = if ctx.instrumented {
            nodes[ev.node() as usize - ctx.base].mshr.len() as u32
        } else {
            0
        };
        let mut core = Core {
            cfg: ctx.cfg,
            base: ctx.base,
            nodes,
            workload,
            fx: Fx::Log {
                buf: &mut io.effects,
                check_on: ctx.check_on,
            },
            dir_actions,
        };
        core.dispatch(ev, t);
        io.ends.push((io.effects.len() as u32, mshr));
    }
}

/// A worker thread's life: wait for an epoch, execute the round, publish
/// completion; exit on [`SHUTDOWN`].
fn worker_loop<W: Workload>(ctx: RoundCtx<'_>, nodes: &mut [Node], mut workload: W, cell: &Cell) {
    let poison = PoisonOnPanic(&cell.gate.done);
    let mut dir_actions = ActionBuf::default();
    let mut seen = 0u32;
    loop {
        let epoch = wait_until(&cell.gate.epoch, |v| v != seen);
        if epoch == SHUTDOWN {
            break;
        }
        seen = epoch;
        {
            let mut io = cell.lock();
            execute_round(ctx, nodes, &mut workload, &mut dir_actions, &mut io);
        }
        cell.gate.done.store(epoch, Ordering::Release);
    }
    std::mem::forget(poison);
}

/// The leader's live half of the simulation: the global queue (carrying
/// the elision mark per event), the mesh, the oracle and the metrics.
struct Leader<'a> {
    queue: EventQueue<(Ev, bool)>,
    mesh: &'a mut Mesh,
    check: &'a mut Option<Box<dyn CheckSink>>,
    obs: &'a mut Obs,
    last_time: &'a mut Cycle,
    cfg: &'a SystemConfig,
    /// Minimum cross-node delivery latency (`MeshConfig::lookahead`);
    /// the conservative horizon every remote send must respect.
    lookahead: u64,
    instrumented: bool,
}

impl Leader<'_> {
    /// Pops the next cycle batch — every event at the earliest pending
    /// cycle, in `(time, seq)` order — and folds the batch's cycle into
    /// the clock exactly as the serial loop would: once per *unelided*
    /// pop. Returns the batch cycle, or `None` when the queue is dry.
    fn next_batch(&mut self, batch: &mut Vec<(Ev, bool)>) -> Option<Cycle> {
        batch.clear();
        let (t, first) = self.queue.pop()?;
        batch.push(first);
        while self.queue.peek_time() == Some(t) {
            if let Some((_, next)) = self.queue.pop() {
                batch.push(next);
            }
        }
        if batch.iter().any(|&(_, marked)| !marked) {
            *self.last_time = (*self.last_time).max(t);
        }
        Some(t)
    }

    /// Replays the effect group of one batch member: samples the serial
    /// kernel's pop-time instrumentation, then applies schedules, sends
    /// and hooks in recorded order against the live state.
    fn replay_group(&mut self, member: Member, effects: &[Effect]) {
        let Member {
            ev,
            marked,
            i,
            m,
            mshr,
        } = member;
        if self.instrumented && !marked {
            let (wheel, overdue, overflow) = self.queue.depth_profile();
            // Batch members i+1..m were popped eagerly here but would
            // still sit in the calendar wheel's cursor bucket when the
            // serial kernel samples event i: add them back.
            let depth = (wheel + overdue + overflow + (m - 1 - i)) as u64;
            self.obs
                .observe_raw(&ev, depth, overflow as u64, mshr as u64);
        }
        let last = effects.len();
        for (j, eff) in effects.iter().enumerate() {
            match *eff {
                Effect::Schedule { at, ev, fusable } => {
                    // The serial fusion guard, re-run at the exact point
                    // the serial kernel would have run it. A fusable
                    // schedule is structurally the final effect of its
                    // handler, so after replaying it the live queue equals
                    // the serial kernel's queue at guard time; the guard
                    // can additionally only hold for the batch's last
                    // member (an unreplayed later member implies a
                    // same-cycle event the serial guard would see).
                    debug_assert!(
                        !fusable || j + 1 == last,
                        "fusable schedule must be its handler's final effect"
                    );
                    let mark =
                        fusable && i + 1 == m && self.queue.peek_time().is_none_or(|p| p > at);
                    self.queue.schedule(at, (ev, mark));
                }
                Effect::Send { at, from, to, msg } => {
                    let flits = msg.kind().flits_for(self.cfg.geometry.block_bytes());
                    let arrival = self
                        .mesh
                        .send(at, NodeId::new(from), NodeId::new(to), flits);
                    debug_assert!(
                        from == to || arrival >= at + self.lookahead,
                        "remote delivery inside the conservative lookahead horizon"
                    );
                    self.queue.schedule(arrival, (Ev::Deliver(to, msg), false));
                }
                Effect::Hook(rec) => {
                    if let Some(sink) = self.check.as_deref_mut() {
                        replay_hook(sink, rec);
                    }
                }
            }
        }
    }
}

/// One batch member at replay time: its event, its elision mark, its
/// position `i` of `m` within the batch, and the MSHR depth its worker
/// sampled at dispatch.
#[derive(Clone, Copy)]
struct Member {
    ev: Ev,
    marked: bool,
    i: usize,
    m: usize,
    mshr: u32,
}

/// Runs `sys` to completion on the sharded kernel. See
/// [`System::run_threads`] for the public contract.
pub(crate) fn run_threads<W>(sys: &mut System<W>, threads: usize) -> SimResult
where
    W: Workload + Clone + Send,
{
    let instrumented = sys.obs.reg.enabled();
    let node_count = usize::from(sys.cfg.nodes);
    let threads = threads.clamp(1, node_count);
    // Contiguous shards: node n belongs to worker n / shard_size. The
    // mesh is bypassed for node-local transfers, so shards must contain
    // whole nodes — which they do by construction.
    let shard_size = node_count.div_ceil(threads);
    let workers = node_count.div_ceil(shard_size);

    let check_on = sys.check.is_some();
    let min_flits = MessageKind::Control.flits_for(sys.cfg.geometry.block_bytes());
    let lookahead = sys.cfg.mesh.lookahead(min_flits);

    {
        let System {
            cfg,
            workload,
            mesh,
            nodes,
            last_time,
            obs,
            check,
            ..
        } = &mut *sys;
        let cfg: &SystemConfig = cfg;

        let mut queue: EventQueue<(Ev, bool)> = EventQueue::new();
        for n in 0..cfg.nodes {
            queue.schedule(Cycle::ZERO, (Ev::CpuStep(n), false));
        }
        let mut leader = Leader {
            queue,
            mesh,
            check,
            obs,
            last_time,
            cfg,
            lookahead,
            instrumented,
        };
        let mut batch: Vec<(Ev, bool)> = Vec::new();

        if workers <= 1 {
            // Inline reference: the identical batch/log/replay machinery
            // with no threads. `run_threads(1)` differing from `run()`
            // would indict the shard protocol itself.
            let mut dir_actions = ActionBuf::default();
            let mut io = WorkerIo {
                inbox: Vec::new(),
                effects: Vec::new(),
                ends: Vec::new(),
            };
            let ctx = RoundCtx {
                cfg,
                base: 0,
                check_on,
                instrumented,
            };
            while let Some(t) = leader.next_batch(&mut batch) {
                io.inbox.clear();
                io.inbox.extend(batch.iter().map(|&(ev, _)| (t, ev)));
                execute_round(ctx, nodes, workload, &mut dir_actions, &mut io);
                let m = batch.len();
                let mut start = 0usize;
                for (i, &(ev, marked)) in batch.iter().enumerate() {
                    let (end, mshr) = io.ends[i];
                    let member = Member {
                        ev,
                        marked,
                        i,
                        m,
                        mshr,
                    };
                    leader.replay_group(member, &io.effects[start..end as usize]);
                    start = end as usize;
                }
            }
        } else {
            let cells: Vec<Cell> = (0..workers).map(|_| Cell::new()).collect();
            std::thread::scope(|scope| {
                for (w, shard) in nodes.chunks_mut(shard_size).enumerate() {
                    let wl = workload.clone();
                    let cell = &cells[w];
                    let ctx = RoundCtx {
                        cfg,
                        base: w * shard_size,
                        check_on,
                        instrumented,
                    };
                    scope.spawn(move || {
                        worker_loop(ctx, shard, wl, cell);
                    });
                }

                let mut staging: Vec<Vec<(Cycle, Ev)>> = vec![Vec::new(); workers];
                let mut involved: Vec<bool> = vec![false; workers];
                let mut rounds: Vec<u32> = vec![0; workers];
                let mut guards: Vec<Option<MutexGuard<'_, WorkerIo>>> =
                    (0..workers).map(|_| None).collect();
                let mut group: Vec<usize> = vec![0; workers];
                let mut start: Vec<usize> = vec![0; workers];

                while let Some(t) = leader.next_batch(&mut batch) {
                    for (s, inv) in staging.iter_mut().zip(involved.iter_mut()) {
                        s.clear();
                        *inv = false;
                    }
                    for &(ev, _) in &batch {
                        let w = ev.node() as usize / shard_size;
                        involved[w] = true;
                        staging[w].push((t, ev));
                    }
                    for w in 0..workers {
                        if !involved[w] {
                            continue;
                        }
                        {
                            let mut io = cells[w].lock();
                            std::mem::swap(&mut io.inbox, &mut staging[w]);
                        }
                        rounds[w] += 1;
                        debug_assert!(rounds[w] < SHUTDOWN);
                        cells[w].gate.epoch.store(rounds[w], Ordering::Release);
                    }
                    for (w, cell) in cells.iter().enumerate() {
                        if !involved[w] {
                            continue;
                        }
                        let done = wait_until(&cell.gate.done, |v| v == rounds[w] || v == POISONED);
                        assert!(
                            done != POISONED,
                            "sharded kernel worker {w} panicked; see its message above"
                        );
                        guards[w] = Some(cell.lock());
                        group[w] = 0;
                        start[w] = 0;
                    }
                    let m = batch.len();
                    for (i, &(ev, marked)) in batch.iter().enumerate() {
                        let w = ev.node() as usize / shard_size;
                        // pfsim-lint: allow(K002) -- leader/worker handshake guarantees the guard is held for involved workers
                        let io = guards[w].as_deref().expect("involved worker not locked");
                        let (end, mshr) = io.ends[group[w]];
                        group[w] += 1;
                        let effects = &io.effects[start[w]..end as usize];
                        start[w] = end as usize;
                        let member = Member {
                            ev,
                            marked,
                            i,
                            m,
                            mshr,
                        };
                        leader.replay_group(member, effects);
                    }
                    for g in &mut guards {
                        *g = None;
                    }
                }

                for cell in &cells {
                    cell.gate.epoch.store(SHUTDOWN, Ordering::Release);
                }
            });
        }
    }
    sys.finish_run(instrumented)
}

#[cfg(test)]
mod tests {
    use pfsim_prefetch::Scheme;
    use pfsim_workloads::{micro, TraceWorkload};

    use crate::stats::SimResult;
    use crate::{System, SystemConfig};

    fn identical(a: &SimResult, b: &SimResult, what: &str) {
        assert_eq!(a.exec_cycles, b.exec_cycles, "{what}: exec_cycles");
        assert_eq!(a.nodes, b.nodes, "{what}: per-node counters");
        assert_eq!(a.net, b.net, "{what}: network stats");
        assert_eq!(a.dir, b.dir, "{what}: directory stats");
        assert_eq!(a.miss_traces, b.miss_traces, "{what}: miss traces");
        assert_eq!(a.metrics, b.metrics, "{what}: metrics snapshot");
    }

    fn mixes() -> Vec<(&'static str, TraceWorkload)> {
        vec![
            ("walk", micro::sequential_walk(16, 96, 2)),
            ("prodcons", micro::producer_consumer(16, 48)),
            ("locks", micro::lock_ping_pong(16, 6)),
            ("random", micro::random_access(16, 128, 400)),
        ]
    }

    #[test]
    fn sharded_matches_serial_on_micro_mixes() {
        for (name, wl) in mixes() {
            let cfg = SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 2 });
            let serial = System::new(cfg.clone(), wl.clone()).run();
            for threads in [1usize, 2, 4] {
                let sharded = System::new(cfg.clone(), wl.clone()).run_threads(threads);
                identical(&serial, &sharded, &format!("{name} @ {threads} threads"));
            }
        }
    }

    /// Shard partitioning must stay correct when `nodes % threads != 0`:
    /// the remainder lands in the final (short) shard and results remain
    /// bit-identical to the serial kernel. Exercises a non-square 3×3
    /// mesh and an 8×8 mesh at thread counts that leave remainders.
    #[test]
    fn sharded_matches_serial_when_nodes_do_not_divide_evenly() {
        for (width, height, threads) in [(3u16, 3u16, 2usize), (8, 8, 3), (8, 8, 7)] {
            let nodes = usize::from(width * height);
            let cfg = SystemConfig::builder()
                .mesh_dims(width, height)
                .scheme(Scheme::Sequential { degree: 1 })
                .build();
            let wl = micro::producer_consumer(nodes, 32);
            let serial = System::new(cfg.clone(), wl.clone()).run();
            let sharded = System::new(cfg.clone(), wl.clone()).run_threads(threads);
            identical(
                &serial,
                &sharded,
                &format!("{width}x{height} @ {threads} threads"),
            );
        }
    }

    #[test]
    fn sharded_matches_serial_with_instrumentation() {
        let cfg = SystemConfig::paper_baseline()
            .with_scheme(Scheme::DDetection { degree: 1 })
            .with_instrumentation(true);
        let wl = micro::producer_consumer(16, 48);
        let serial = System::new(cfg.clone(), wl.clone()).run();
        assert!(serial.metrics.is_some(), "instrumented run must snapshot");
        for threads in [1usize, 2, 4] {
            let sharded = System::new(cfg.clone(), wl.clone()).run_threads(threads);
            identical(&serial, &sharded, &format!("instrumented @ {threads}"));
        }
    }
}
