//! The full-system simulator: 16 processing nodes, the directory protocol
//! and the mesh, driven by one deterministic event loop.
//!
//! The event handlers are written against a [`Core`] view — a node
//! sub-slice plus an effect context [`Fx`] — so the same handler code
//! serves two kernels: the serial loop (`Fx::Live`, effects applied
//! immediately) and the sharded loop of [`crate::shard`] (`Fx::Log`,
//! effects recorded by a worker and replayed in deterministic order by
//! the leader).

use pfsim_cache::{Eviction, LineState, MshrTryAlloc};
use pfsim_coherence::{ActionBuf, DirAction, DirRequest, DirStats};
use pfsim_engine::{CounterId, Cycle, EventQueue, HistogramId, Registry};
use pfsim_mem::{Addr, BlockAddr, Geometry, NodeId};
use pfsim_network::Mesh;
use pfsim_prefetch::{ReadAccess, ReadOutcome, Scheme};
use pfsim_workloads::{Op, Workload};

use crate::check::CheckSink;
use crate::msg::Msg;
use crate::node::{CpuStatus, DrainBlock, FlwbEntry, MshrEntry, Node, TxnKind};
use crate::shard::{Effect, HookRecord};
use crate::stats::{MissRecord, SimResult};
use crate::{RecordMisses, SystemConfig};

/// Events of the system-level simulation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// Run the processor of node `n`.
    CpuStep(u16),
    /// The SLC of node `n` services its next queued job.
    SlcWork(u16),
    /// A message arrives at node `n`.
    Deliver(u16, Msg),
}

impl Ev {
    /// The node the event executes on (the sharding key: every handler
    /// touches only this node's state plus the effect context).
    pub(crate) fn node(&self) -> u16 {
        match *self {
            Ev::CpuStep(n) | Ev::SlcWork(n) | Ev::Deliver(n, _) => n,
        }
    }
}

/// The observability registry plus pre-registered handles for the metrics
/// the event loop touches. Hot-path updates go through the index handles
/// (no name lookups); end-of-run gauges use `Registry::record` by name.
/// Every mutating registry call is a no-op behind one predictable branch
/// when instrumentation is off.
pub(crate) struct Obs {
    pub(crate) reg: Registry,
    pub(crate) ev_cpu_step: CounterId,
    pub(crate) ev_slc_work: CounterId,
    pub(crate) ev_deliver: CounterId,
    pub(crate) queue_depth: HistogramId,
    pub(crate) queue_overflow: HistogramId,
    pub(crate) mshr_occupancy: HistogramId,
}

impl Obs {
    fn new(enabled: bool) -> Self {
        let mut reg = Registry::new(enabled);
        Obs {
            ev_cpu_step: reg.counter("ev_cpu_step"),
            ev_slc_work: reg.counter("ev_slc_work"),
            ev_deliver: reg.counter("ev_deliver"),
            queue_depth: reg.histogram("queue_depth"),
            queue_overflow: reg.histogram("queue_overflow_depth"),
            mshr_occupancy: reg.histogram("mshr_occupancy"),
            reg,
        }
    }

    /// One per-event sample with the queue-depth components and the MSHR
    /// occupancy supplied by the caller. The serial loop reads them off
    /// the live queue and node; the sharded leader reconstructs the
    /// serial-equivalent values (see `crate::shard`). Keeping one shared
    /// entry point is what makes the two kernels' metrics bit-identical.
    pub(crate) fn observe_raw(&mut self, ev: &Ev, depth: u64, overflow: u64, mshr: u64) {
        self.reg.observe(self.queue_depth, depth);
        self.reg.observe(self.queue_overflow, overflow);
        let counter = match ev {
            Ev::CpuStep(_) => self.ev_cpu_step,
            Ev::SlcWork(_) => self.ev_slc_work,
            Ev::Deliver(..) => self.ev_deliver,
        };
        self.reg.inc(counter, 1);
        self.reg.observe(self.mshr_occupancy, mshr);
    }
}

/// Outcome of one FLWB drain attempt (see [`Core::slc_drain_one`]).
enum Drained {
    /// An entry was consumed; service may continue.
    One,
    /// No entry can be served in this event.
    Idle,
    /// The head exists but is issued at a future time, and its wakeup
    /// would pop as the very next event: the caller may fast-forward to
    /// this time instead of scheduling.
    ParkedUntil(Cycle),
}

/// Where a handler's effects go.
///
/// `Live` is the serial kernel: schedules, sends and oracle hooks apply
/// immediately against the event queue, the mesh and the installed
/// [`CheckSink`]. `Log` is a sharded worker: the handler owns only its
/// shard's nodes, so every externally visible effect is appended to a
/// buffer for the leader to replay in deterministic `(time, seq)` order.
///
/// The serial kernel's event-fusion fast paths key off
/// [`can_fuse`](Self::can_fuse), which is constantly `false` under `Log`:
/// a worker cannot see the global queue, so it always schedules, and
/// marks the schedule *fusable* instead. At replay the leader re-evaluates
/// the exact serial fusion guard against the live queue and marks the
/// event as elided-equivalent when the guard holds, which reproduces the
/// fused kernel's event counts and clock updates bit-for-bit (see
/// `crate::shard`).
pub(crate) enum Fx<'a> {
    /// Apply effects immediately (the serial kernel).
    Live {
        /// The live event queue.
        queue: &'a mut EventQueue<Ev>,
        /// The live mesh.
        mesh: &'a mut Mesh,
        /// The installed correctness observer, if any.
        check: &'a mut Option<Box<dyn CheckSink>>,
    },
    /// Record effects for deterministic replay (a sharded worker).
    Log {
        /// The worker's effect buffer for the current event.
        buf: &'a mut Vec<Effect>,
        /// Whether a check sink is installed on the system (hooks are
        /// logged only when someone will replay them).
        check_on: bool,
    },
}

impl Fx<'_> {
    /// Schedules `ev` at `at` (a regular, never-elided event).
    fn schedule(&mut self, at: Cycle, ev: Ev) {
        match self {
            Fx::Live { queue, .. } => queue.schedule(at, ev),
            Fx::Log { buf, .. } => buf.push(Effect::Schedule {
                at,
                ev,
                fusable: false,
            }),
        }
    }

    /// Schedules `ev` at `at` from a fusion site: under `Live` this is an
    /// ordinary schedule (the caller already evaluated the fusion guard
    /// and it failed); under `Log` the schedule is tagged fusable so the
    /// leader can re-evaluate the guard at replay time.
    fn schedule_fusable(&mut self, at: Cycle, ev: Ev) {
        match self {
            Fx::Live { queue, .. } => queue.schedule(at, ev),
            Fx::Log { buf, .. } => buf.push(Effect::Schedule {
                at,
                ev,
                fusable: true,
            }),
        }
    }

    /// Sends `msg` from `from` to `to`, reserving mesh bandwidth at `at`.
    /// Data messages are sized by the geometry's block size.
    fn send(&mut self, geometry: Geometry, at: Cycle, from: u16, to: u16, msg: Msg) {
        match self {
            Fx::Live { queue, mesh, .. } => {
                let flits = msg.kind().flits_for(geometry.block_bytes());
                let arrival = mesh.send(at, NodeId::new(from), NodeId::new(to), flits);
                queue.schedule(arrival, Ev::Deliver(to, msg));
            }
            Fx::Log { buf, .. } => buf.push(Effect::Send { at, from, to, msg }),
        }
    }

    /// Whether oracle hooks are live (construct a [`HookRecord`] only when
    /// this returns true; the disabled path stays one predictable branch).
    fn check_on(&self) -> bool {
        match self {
            Fx::Live { check, .. } => check.is_some(),
            Fx::Log { check_on, .. } => *check_on,
        }
    }

    /// Delivers (or logs) one oracle hook.
    fn hook(&mut self, rec: HookRecord) {
        match self {
            Fx::Live { check, .. } => {
                if let Some(k) = check.as_deref_mut() {
                    crate::shard::replay_hook(k, rec);
                }
            }
            Fx::Log { buf, check_on } => {
                if *check_on {
                    buf.push(Effect::Hook(rec));
                }
            }
        }
    }

    /// The serial event-fusion guard: true when an event scheduled at `at`
    /// would pop as the very next event with state identical to right now,
    /// so the handler may continue inline instead. The peek must be strict
    /// (`> at`): a same-time event with an earlier sequence number would
    /// pop first, and fusing past it would reorder the simulation. Always
    /// false under `Log` (a worker cannot see the global queue).
    fn can_fuse(&self, at: Cycle) -> bool {
        match self {
            Fx::Live { queue, .. } => queue.peek_time().is_none_or(|p| p > at),
            Fx::Log { .. } => false,
        }
    }
}

/// Home node of `block` under the configured page placement.
pub(crate) fn home_of(cfg: &SystemConfig, block: BlockAddr) -> u16 {
    cfg.placement
        .home_of(cfg.geometry.page_of_block(block))
        .as_u16()
}

/// Home node of the page containing `addr`.
pub(crate) fn home_of_addr(cfg: &SystemConfig, addr: Addr) -> u16 {
    cfg.placement.home_of(cfg.geometry.page_of(addr)).as_u16()
}

/// Schedules SLC service for node `n`. If a later `SlcWork` is already
/// pending (e.g. parked on a future-issued FLWB entry), an earlier
/// request re-arms service sooner; the stale event is harmless (it
/// re-checks state when it fires). `fusable` is set only by the message
///-delivery site whose serial twin may serve the message inline (the
/// deliver fast path); all other callers always schedule for real.
fn notify_slc(node: &mut Node, fx: &mut Fx, n: u16, at: Cycle, fusable: bool) {
    let target = at.max(node.slc_server.free_at());
    match node.slc_scheduled_at {
        Some(scheduled) if scheduled <= target => {}
        _ => {
            node.slc_scheduled_at = Some(target);
            if fusable {
                fx.schedule_fusable(target, Ev::SlcWork(n));
            } else {
                fx.schedule(target, Ev::SlcWork(n));
            }
        }
    }
}

/// Defers `op` because the FLWB is full: the processor stalls until the
/// SLC drains an entry, then retries the operation.
fn defer_for_flwb(node: &mut Node, fx: &mut Fx, n: u16, op: Op, t: Cycle) {
    node.pending_op = Some(op);
    block_cpu(node, fx, n, CpuStatus::WaitFlwb, t);
}

/// Blocks the processor in `status` at time `t` and kicks SLC service (the
/// blocking operation's FLWB entry is already queued).
fn block_cpu(node: &mut Node, fx: &mut Fx, n: u16, status: CpuStatus, t: Cycle) {
    node.status = status;
    node.issue_time = t;
    node.cpu_time = t;
    notify_slc(node, fx, n, t, false);
}

/// One kernel's view of the machine while executing a single event: the
/// shared config, a contiguous node slice (`nodes[0]` is global node
/// `base`), the workload, and the effect context. The serial kernel
/// builds one per popped event over all nodes with `Fx::Live`; a sharded
/// worker builds one over its shard with `Fx::Log`.
///
/// Every handler is strictly node-local: it touches `nodes[ev.node() -
/// base]` and nothing else outside `fx`. That locality is the entire
/// basis of the sharded kernel's determinism argument (DESIGN.md §12),
/// so new handler code must preserve it.
pub(crate) struct Core<'a, W: Workload> {
    pub(crate) cfg: &'a SystemConfig,
    pub(crate) base: usize,
    pub(crate) nodes: &'a mut [Node],
    pub(crate) workload: &'a mut W,
    pub(crate) fx: Fx<'a>,
    pub(crate) dir_actions: &'a mut ActionBuf,
}

impl<W: Workload> Core<'_, W> {
    /// Executes one event at time `t`.
    pub(crate) fn dispatch(&mut self, ev: Ev, t: Cycle) {
        match ev {
            Ev::CpuStep(n) => self.cpu_step(n, t),
            Ev::SlcWork(n) => self.slc_work(n, t),
            Ev::Deliver(n, msg) => self.deliver(n, msg, t),
        }
    }

    // ----------------------------------------------------------------
    // Processor
    // ----------------------------------------------------------------

    /// Runs the processor of node `n` from its local time until it blocks,
    /// finishes, or exhausts its time slice.
    ///
    /// The node, workload and effect context are split-borrowed once up
    /// front: this loop consumes every trace operation, so it must not
    /// re-index `self.nodes` or round-trip `pending_op` through memory
    /// per op.
    fn cpu_step(&mut self, n: u16, now: Cycle) {
        let ni = n as usize - self.base;
        let Core {
            cfg,
            workload,
            nodes,
            fx,
            ..
        } = self;
        let node = &mut nodes[ni];
        if node.status != CpuStatus::Ready {
            return;
        }
        let mut t = node.cpu_time.max(now);
        let slice_end = t + cfg.cpu_slice;
        let geometry = cfg.geometry;
        let sequential = cfg.consistency == crate::ConsistencyModel::Sequential;
        let mut pending = node.pending_op.take();

        loop {
            if t >= slice_end {
                node.cpu_time = t;
                fx.schedule(t, Ev::CpuStep(n));
                return;
            }
            let op = match pending.take() {
                Some(op) => op,
                // The workload is indexed by *global* cpu number: a
                // sharded worker's clone has all 16 streams but only
                // ever advances its own nodes'.
                None => match workload.next(n as usize) {
                    Some(op) => op,
                    None => {
                        node.status = CpuStatus::Done;
                        node.cpu_time = t;
                        return;
                    }
                },
            };
            match op {
                Op::Compute { cycles } => {
                    t += u64::from(cycles);
                }
                Op::Read { addr, pc } => {
                    let block = geometry.block_of(addr);
                    if node.flc.read(block) {
                        node.stats.reads += 1;
                        node.stats.flc_read_hits += 1;
                        if fx.check_on() {
                            fx.hook(HookRecord::ReadFlcHit { cpu: n, addr });
                        }
                        t += 1;
                        continue;
                    }
                    if node.flwb.is_full() {
                        // Deferred, not retired: stats count on the retry.
                        defer_for_flwb(node, fx, n, op, t);
                        return;
                    }
                    node.stats.reads += 1;
                    node.flwb
                        .push(FlwbEntry::Read {
                            addr,
                            pc,
                            issued: t,
                        })
                        // pfsim-lint: allow(K002) -- FLWB checked not-full just above; push cannot fail
                        .expect("checked above");
                    block_cpu(node, fx, n, CpuStatus::WaitRead, t);
                    return;
                }
                Op::Write { addr, pc: _ } => {
                    // Write-through, no-write-allocate FLC: the tag array
                    // is unchanged whether it hits or misses.
                    let _ = node.flc.write(geometry.block_of(addr));
                    if node.flwb.is_full() {
                        // Deferred, not retired: stats count on the retry.
                        defer_for_flwb(node, fx, n, op, t);
                        return;
                    }
                    node.stats.writes += 1;
                    node.flwb
                        .push(FlwbEntry::Write { addr, issued: t })
                        // pfsim-lint: allow(K002) -- FLWB checked not-full just above; push cannot fail
                        .expect("checked above");
                    if fx.check_on() {
                        fx.hook(HookRecord::WriteIssued { cpu: n, addr });
                    }
                    if sequential {
                        // Sequential consistency: the processor waits for
                        // every write to perform globally.
                        node.status = CpuStatus::WaitWrite;
                        node.issue_time = t;
                        node.cpu_time = t;
                        notify_slc(node, fx, n, t, false);
                        return;
                    }
                    t += 1;
                    notify_slc(node, fx, n, t, false);
                }
                Op::Acquire { lock } => {
                    if node.flwb.is_full() {
                        // Deferred, not retired: stats count on the retry.
                        defer_for_flwb(node, fx, n, op, t);
                        return;
                    }
                    node.flwb
                        .push(FlwbEntry::Acquire { lock, issued: t })
                        // pfsim-lint: allow(K002) -- FLWB checked not-full just above; push cannot fail
                        .expect("checked above");
                    block_cpu(node, fx, n, CpuStatus::WaitLock, t);
                    return;
                }
                Op::Release { lock } => {
                    if node.flwb.is_full() {
                        // Deferred, not retired: stats count on the retry.
                        defer_for_flwb(node, fx, n, op, t);
                        return;
                    }
                    node.flwb
                        .push(FlwbEntry::Release { lock, issued: t })
                        // pfsim-lint: allow(K002) -- FLWB checked not-full just above; push cannot fail
                        .expect("checked above");
                    block_cpu(node, fx, n, CpuStatus::WaitLock, t);
                    return;
                }
                Op::Barrier { id } => {
                    if node.flwb.is_full() {
                        // Deferred, not retired: stats count on the retry.
                        defer_for_flwb(node, fx, n, op, t);
                        return;
                    }
                    node.flwb
                        .push(FlwbEntry::Barrier { id, issued: t })
                        // pfsim-lint: allow(K002) -- FLWB checked not-full just above; push cannot fail
                        .expect("checked above");
                    block_cpu(node, fx, n, CpuStatus::WaitBarrier, t);
                    return;
                }
            }
        }
    }

    /// Completes a blocked demand read at time `done`: fills the FLC,
    /// accounts the read stall (everything beyond the 1-pclock pipelined
    /// FLC access), and resumes the processor after the FLC fill.
    fn serve_waiting_read(&mut self, n: u16, block: BlockAddr, done: Cycle) {
        let ni = n as usize - self.base;
        if self.fx.check_on() {
            self.fx.hook(HookRecord::ReadCompleted { cpu: n, block });
        }
        let flc_fill = self.cfg.flc_fill;
        self.nodes[ni].flc.fill(block);
        let issue = self.nodes[ni].issue_time;
        self.nodes[ni].stats.read_stall +=
            (done + flc_fill).saturating_since(issue).saturating_sub(1);
        self.resume_cpu(n, done + flc_fill);
    }

    /// Resumes a blocked processor at time `at`.
    fn resume_cpu(&mut self, n: u16, at: Cycle) {
        let node = &mut self.nodes[n as usize - self.base];
        debug_assert_ne!(node.status, CpuStatus::Ready);
        debug_assert_ne!(node.status, CpuStatus::Done);
        node.status = CpuStatus::Ready;
        node.cpu_time = node.cpu_time.max(at);
        let at = node.cpu_time;
        self.fx.schedule(at, Ev::CpuStep(n));
    }

    // ----------------------------------------------------------------
    // SLC service
    // ----------------------------------------------------------------

    /// The SLC of node `n` services one job (an incoming message has
    /// priority over the FLWB head).
    ///
    /// After each job the handler decides how to continue. If more work is
    /// queued it would normally schedule `SlcWork` at the server's free
    /// time; but when nothing else in the event queue is due at or before
    /// that time, the scheduled event would pop as the very next event
    /// with state identical to right now — so the handler serves the next
    /// job inline instead, skipping the queue round-trip (see
    /// [`Fx::can_fuse`]). Under `Fx::Log` the fusion guard is always
    /// false: one job per event, with the follow-on schedule tagged
    /// fusable for the leader's replay-time guard.
    fn slc_work(&mut self, n: u16, now: Cycle) {
        let ni = n as usize - self.base;
        let mut now = now;
        loop {
            self.nodes[ni].slc_scheduled_at = None;

            if let Some(msg) = self.nodes[ni].incoming.pop_front() {
                let done = self.nodes[ni].slc_server.serve(now, self.cfg.slc_service);
                self.handle_slc_msg(n, msg, done);
            } else {
                match self.slc_drain_one(n, now) {
                    Drained::One => {}
                    Drained::Idle => return,
                    // A future-issued head whose wakeup would pop as the
                    // very next event: skip ahead and retry in this event.
                    Drained::ParkedUntil(at) => {
                        now = at;
                        continue;
                    }
                }
            }

            match self.reschedule_or_fuse(n) {
                // Guaranteed-next: serve the following job in this event.
                Some(at) => now = at,
                None => return,
            }
        }
    }

    /// After an SLC job completes: schedules the next job if any work is
    /// queued, or — when that event would pop as the very next event —
    /// returns its time so the caller serves it inline instead (the
    /// fusion rule documented on [`Self::slc_work`]).
    fn reschedule_or_fuse(&mut self, n: u16) -> Option<Cycle> {
        let ni = n as usize - self.base;
        let node = &self.nodes[ni];
        if node.slc_scheduled_at.is_some() {
            // A handler already armed service (e.g. an unblocked drain).
            return None;
        }
        // A blocked drain only gates FLWB consumption; incoming coherence
        // messages must keep flowing (they are what unblocks the drain).
        let has_work = !node.incoming.is_empty()
            || (node.drain_block == DrainBlock::None && !node.flwb.is_empty());
        if !has_work {
            return None;
        }
        let at = node.slc_server.free_at();
        if self.fx.can_fuse(at) {
            return Some(at);
        }
        self.nodes[ni].slc_scheduled_at = Some(at);
        self.fx.schedule_fusable(at, Ev::SlcWork(n));
        None
    }

    /// Drains one FLWB entry at `now` if one is ready. Returns
    /// [`Drained::Idle`] when service is finished for this event (empty
    /// buffer, a parked future-issued head, or a blocked drain), or
    /// [`Drained::ParkedUntil`] when the head is future-issued but its
    /// wakeup would be guaranteed-next (the caller fast-forwards).
    fn slc_drain_one(&mut self, n: u16, now: Cycle) -> Drained {
        let ni = n as usize - self.base;
        // Inspect the head without consuming it: entries that need
        // resources may have to wait.
        let Some(head) = self.nodes[ni].flwb.peek().copied() else {
            // A stale wakeup: an earlier event already drained the queue.
            self.nodes[ni].stats.spurious_slc_wakeups += 1;
            return Drained::Idle;
        };
        if head.issued() > now {
            // The processor runs ahead of the event loop; this entry does
            // not exist yet at SLC time.
            let at = head.issued();
            if self.fx.can_fuse(at) {
                return Drained::ParkedUntil(at);
            }
            let node = &mut self.nodes[ni];
            node.slc_scheduled_at = Some(at);
            self.fx.schedule_fusable(at, Ev::SlcWork(n));
            return Drained::Idle;
        }

        match head {
            FlwbEntry::Read { addr, pc, .. } => {
                let block = self.cfg.geometry.block_of(addr);
                let node = &mut self.nodes[ni];
                // Check the cheap full/empty gate first: the SLC and MSHR
                // probes only matter when the MSHR is actually full.
                if node.mshr.is_full()
                    && node.slc.lookup(block).is_none()
                    && !node.mshr.contains(block)
                {
                    node.drain_block = DrainBlock::MshrFull;
                    return Drained::Idle;
                }
                self.nodes[ni].flwb.pop();
                let done = self.nodes[ni].slc_server.serve(now, self.cfg.slc_service);
                self.slc_read(n, addr, pc, done);
            }
            FlwbEntry::Write { addr, .. } => {
                let block = self.cfg.geometry.block_of(addr);
                let node = &mut self.nodes[ni];
                // As above: probe the SLC and MSHR only when the MSHR is
                // full, which is the only case that can block the drain.
                if node.mshr.is_full() {
                    let needs_slot = match node.slc.lookup(block) {
                        Some(line) => line.state == LineState::Shared && !node.mshr.contains(block),
                        None => !node.mshr.contains(block),
                    };
                    if needs_slot {
                        node.drain_block = DrainBlock::MshrFull;
                        return Drained::Idle;
                    }
                }
                self.nodes[ni].flwb.pop();
                let done = self.nodes[ni].slc_server.serve(now, self.cfg.slc_service);
                self.slc_write(n, addr, done);
            }
            FlwbEntry::Acquire { lock, .. } => {
                self.nodes[ni].flwb.pop();
                let done = self.nodes[ni].slc_server.serve(now, self.cfg.slc_service);
                let home = home_of_addr(self.cfg, lock);
                self.fx.send(
                    self.cfg.geometry,
                    done,
                    n,
                    home,
                    Msg::LockReq {
                        lock,
                        from: NodeId::new(n),
                    },
                );
            }
            FlwbEntry::Release { lock, .. } => {
                if self.nodes[ni].pending_write_txns > 0 {
                    self.nodes[ni].drain_block = DrainBlock::ReleasePending;
                    return Drained::Idle;
                }
                self.nodes[ni].flwb.pop();
                if self.fx.check_on() {
                    self.fx.hook(HookRecord::ReleaseDrained { cpu: n, lock });
                }
                let done = self.nodes[ni].slc_server.serve(now, self.cfg.slc_service);
                let home = home_of_addr(self.cfg, lock);
                self.fx.send(
                    self.cfg.geometry,
                    done,
                    n,
                    home,
                    Msg::UnlockReq {
                        lock,
                        from: NodeId::new(n),
                    },
                );
                // The release itself completes once issued (the lock
                // hand-off happens at the home).
                let issue = self.nodes[ni].issue_time;
                self.nodes[ni].stats.sync_stall += done.saturating_since(issue);
                self.resume_cpu(n, done);
            }
            FlwbEntry::Barrier { id, .. } => {
                if self.nodes[ni].pending_write_txns > 0 {
                    self.nodes[ni].drain_block = DrainBlock::ReleasePending;
                    return Drained::Idle;
                }
                self.nodes[ni].flwb.pop();
                if self.fx.check_on() {
                    self.fx.hook(HookRecord::BarrierDrained { cpu: n, id });
                }
                let done = self.nodes[ni].slc_server.serve(now, self.cfg.slc_service);
                let home = id % u32::from(self.cfg.nodes);
                self.fx.send(
                    self.cfg.geometry,
                    done,
                    n,
                    home as u16,
                    Msg::BarrierArrive {
                        id,
                        from: NodeId::new(n),
                    },
                );
            }
        }

        // A processor stalled on a full FLWB can retry now that an entry
        // drained.
        if self.nodes[ni].status == CpuStatus::WaitFlwb && !self.nodes[ni].flwb.is_full() {
            let waited = self.nodes[ni]
                .slc_server
                .free_at()
                .saturating_since(self.nodes[ni].issue_time);
            self.nodes[ni].stats.flwb_stall += waited;
            let at = self.nodes[ni].slc_server.free_at();
            self.resume_cpu(n, at);
        }

        Drained::One
    }

    /// Clears a drain block of the given kind and restarts SLC service.
    fn unblock_drain(&mut self, n: u16, kind: DrainBlock, at: Cycle) {
        let ni = n as usize - self.base;
        if self.nodes[ni].drain_block == kind {
            self.nodes[ni].drain_block = DrainBlock::None;
            notify_slc(&mut self.nodes[ni], &mut self.fx, n, at, false);
        }
    }

    /// A demand read request presented to the SLC (the processor is
    /// blocked on it).
    fn slc_read(&mut self, n: u16, addr: Addr, pc: pfsim_mem::Pc, done: Cycle) {
        let ni = n as usize - self.base;
        let block = self.cfg.geometry.block_of(addr);
        if self.fx.check_on() {
            self.fx.hook(HookRecord::ReadRequest { cpu: n, addr });
        }

        let outcome = {
            let node = &mut self.nodes[ni];
            match node.slc.demand_access(block) {
                Some(was_tagged) => {
                    node.stats.slc_read_hits += 1;
                    if was_tagged {
                        node.stats.tagged_hits += 1;
                        node.stats.prefetches_useful += 1;
                        ReadOutcome::HitPrefetched
                    } else {
                        ReadOutcome::Hit
                    }
                }
                None => {
                    if let Some(entry) = node.mshr.get_mut(block) {
                        entry.waiting_cpu = true;
                        node.stats.delayed_hits += 1;
                        if entry.kind == TxnKind::Prefetch && !entry.prefetch_consumed {
                            entry.prefetch_consumed = true;
                            node.stats.prefetches_useful += 1;
                            ReadOutcome::InFlightPrefetch
                        } else {
                            ReadOutcome::InFlightDemand
                        }
                    } else {
                        node.stats.read_misses += 1;
                        let cause = node.classify_miss(block);
                        if node.record {
                            node.miss_trace.push(MissRecord {
                                pc,
                                addr,
                                block,
                                cause,
                            });
                        }
                        node.mshr
                            .alloc(block, {
                                let mut e = MshrEntry::new(TxnKind::ReadShared);
                                e.waiting_cpu = true;
                                e
                            })
                            // pfsim-lint: allow(K002) -- MSHR capacity reserved before the op was popped from the lane
                            .expect("capacity checked before pop");
                        ReadOutcome::Miss
                    }
                }
            }
        };

        if outcome == ReadOutcome::Hit || outcome == ReadOutcome::HitPrefetched {
            self.serve_waiting_read(n, block, done);
        } else if outcome == ReadOutcome::Miss {
            let home = home_of(self.cfg, block);
            self.fx.send(
                self.cfg.geometry,
                done,
                n,
                home,
                Msg::CohReq {
                    block,
                    req: DirRequest::read_shared(NodeId::new(n)),
                },
            );
        }

        self.run_prefetcher(n, addr, pc, outcome, done);
    }

    /// A buffered write drained from the FLWB into the SLC.
    fn slc_write(&mut self, n: u16, addr: Addr, done: Cycle) {
        let ni = n as usize - self.base;
        let block = self.cfg.geometry.block_of(addr);
        let node = &mut self.nodes[ni];

        let req = match node.slc.write_access(block) {
            Some((LineState::Modified, was_tagged)) => {
                // Write hit on an owned block: absorbed. A write consuming
                // a prefetched-tagged block counts the prefetch useful (it
                // turned a write miss into a hit); `write_access` already
                // cleared the tag so it cannot fire again later.
                if was_tagged {
                    node.stats.prefetches_useful += 1;
                }
                if self.fx.check_on() {
                    self.fx.hook(HookRecord::WriteApplied { cpu: n, addr });
                }
                self.resume_write(n, done);
                return;
            }
            Some((LineState::Shared, was_tagged)) => {
                // Shared: need ownership. A prefetched tag is consumed by
                // the write exactly as in the Modified case.
                if was_tagged {
                    node.stats.prefetches_useful += 1;
                }
                if node.mshr.contains(block) {
                    // Upgrade already in flight: the write merges into it.
                    if self.fx.check_on() {
                        self.fx.hook(HookRecord::WriteDeferred { cpu: n, addr });
                    }
                    return;
                }
                node.mshr
                    .alloc(block, {
                        let mut e = MshrEntry::new(TxnKind::Upgrade);
                        e.write_pending = true;
                        e
                    })
                    // pfsim-lint: allow(K002) -- MSHR capacity reserved before the op was popped from the lane
                    .expect("capacity checked before pop");
                node.pending_write_txns += 1;
                DirRequest::Upgrade {
                    from: NodeId::new(n),
                }
            }
            None => {
                if let Some(entry) = node.mshr.get_mut(block) {
                    if !entry.write_pending {
                        entry.write_pending = true;
                        node.pending_write_txns += 1;
                    }
                    if self.fx.check_on() {
                        self.fx.hook(HookRecord::WriteDeferred { cpu: n, addr });
                    }
                    return;
                }
                node.mshr
                    .alloc(block, {
                        let mut e = MshrEntry::new(TxnKind::ReadExclusive);
                        e.write_pending = true;
                        e
                    })
                    // pfsim-lint: allow(K002) -- MSHR capacity reserved before the op was popped from the lane
                    .expect("capacity checked before pop");
                node.pending_write_txns += 1;
                DirRequest::ReadExclusive {
                    from: NodeId::new(n),
                }
            }
        };
        if self.fx.check_on() {
            self.fx.hook(HookRecord::WriteDeferred { cpu: n, addr });
        }
        let home = home_of(self.cfg, block);
        self.fx
            .send(self.cfg.geometry, done, n, home, Msg::CohReq { block, req });
    }

    /// Feeds the prefetcher and issues the surviving candidates.
    fn run_prefetcher(
        &mut self,
        n: u16,
        addr: Addr,
        pc: pfsim_mem::Pc,
        outcome: ReadOutcome,
        done: Cycle,
    ) {
        let ni = n as usize - self.base;
        let mut candidates = std::mem::take(&mut self.nodes[ni].pf_scratch);
        candidates.clear();
        self.nodes[ni]
            .prefetcher
            .on_read(&ReadAccess { pc, addr, outcome }, &mut candidates);

        let mut issued = 0u32;
        for &block in &candidates {
            let node = &mut self.nodes[ni];
            if node.slc.contains(block) {
                node.stats.pf_dropped_present += 1;
                continue;
            }
            // One fused CAM walk decides in-flight, full, or allocated.
            match node
                .mshr
                .try_alloc(block, MshrEntry::new(TxnKind::Prefetch))
            {
                MshrTryAlloc::InFlight => {
                    node.stats.pf_dropped_inflight += 1;
                    continue;
                }
                MshrTryAlloc::Full => {
                    node.stats.pf_dropped_full += 1;
                    continue;
                }
                MshrTryAlloc::Allocated => {}
            }
            node.stats.prefetches_issued += 1;
            issued += 1;
            let home = home_of(self.cfg, block);
            self.fx.send(
                self.cfg.geometry,
                done,
                n,
                home,
                Msg::CohReq {
                    block,
                    req: DirRequest::prefetch(NodeId::new(n)),
                },
            );
        }
        if !candidates.is_empty() {
            self.nodes[ni].prefetcher.on_prefetches_issued(issued);
        }
        self.nodes[ni].pf_scratch = candidates;
    }

    // ----------------------------------------------------------------
    // SLC-side message handling
    // ----------------------------------------------------------------

    fn handle_slc_msg(&mut self, n: u16, msg: Msg, done: Cycle) {
        let ni = n as usize - self.base;
        match msg {
            Msg::Fetch { block, inval, home } => {
                let node = &mut self.nodes[ni];
                // One tag-store probe: the removal/downgrade result doubles
                // as the presence check.
                let had_copy = if inval {
                    if node.slc.invalidate(block).is_some() {
                        node.flc.invalidate(block);
                        node.removal
                            .insert(block.as_u64(), crate::stats::MissCause::Coherence);
                        true
                    } else {
                        false
                    }
                } else {
                    node.slc.downgrade(block)
                };
                if self.fx.check_on() {
                    self.fx.hook(HookRecord::FetchSupplied {
                        cpu: n,
                        block,
                        inval,
                        had_copy,
                    });
                }
                self.fx.send(
                    self.cfg.geometry,
                    done,
                    n,
                    home.as_u16(),
                    Msg::FetchReply { block, had_copy },
                );
            }
            Msg::Inval { block, home } => {
                let node = &mut self.nodes[ni];
                node.stats.invals_received += 1;
                if node.slc.invalidate(block).is_some() {
                    node.flc.invalidate(block);
                    node.removal
                        .insert(block.as_u64(), crate::stats::MissCause::Coherence);
                }
                if self.fx.check_on() {
                    self.fx.hook(HookRecord::Invalidated { cpu: n, block });
                }
                self.fx.send(
                    self.cfg.geometry,
                    done,
                    n,
                    home.as_u16(),
                    Msg::InvalAck { block },
                );
            }
            Msg::DataReply {
                block,
                exclusive,
                prefetch,
            } => {
                // Protocol cross-check: the home's view of the request
                // kind must match the requester's outstanding entry.
                debug_assert_eq!(
                    prefetch,
                    self.nodes[ni]
                        .mshr
                        .get(block)
                        .is_some_and(|e| e.kind == TxnKind::Prefetch),
                    "home and requester disagree about a prefetch"
                );
                self.slc_fill(n, block, exclusive, done);
            }
            Msg::AckReply { block } => {
                let node = &mut self.nodes[ni];
                let entry = node
                    .mshr
                    .remove(block)
                    // pfsim-lint: allow(K002) -- protocol trap: an ack always matches an open upgrade transaction
                    .expect("upgrade ack without transaction");
                debug_assert_eq!(entry.kind, TxnKind::Upgrade);
                if node.slc.promote(block) {
                    if self.fx.check_on() {
                        self.fx.hook(HookRecord::Promote { cpu: n, block });
                    }
                    if entry.waiting_cpu {
                        // A read merged into the upgrade: the block is
                        // resident, serve it now.
                        self.serve_waiting_read(n, block, done);
                    }
                } else {
                    // The shared line was displaced by a conflicting fill
                    // while the upgrade was in flight (finite SLC). We now
                    // own a block we no longer hold: return it to memory
                    // immediately so the directory stays consistent. The
                    // displaced copy was clean, so memory is already
                    // current and this writeback carries no new data — it
                    // is an ownership relinquish that this protocol
                    // expresses as a (rare) data-sized writeback.
                    if self.fx.check_on() {
                        self.fx.hook(HookRecord::PromoteFailed { cpu: n, block });
                    }
                    let node = &mut self.nodes[ni];
                    node.stats.writebacks += 1;
                    let home = home_of(self.cfg, block);
                    self.fx.send(
                        self.cfg.geometry,
                        done,
                        n,
                        home,
                        Msg::CohReq {
                            block,
                            req: DirRequest::Writeback {
                                from: NodeId::new(n),
                            },
                        },
                    );
                    // The store (and any merged read) still has to
                    // complete: re-issue as a read-exclusive. The
                    // writeback is sent first over the same route, so it
                    // is delivered first — per-link FIFO for remote homes,
                    // and the event queue's scheduled-order tie-break for
                    // the local-home case. The pending-write accounting
                    // carries over to the new transaction.
                    let node = &mut self.nodes[ni];
                    node.mshr
                        .alloc(block, {
                            let mut e = MshrEntry::new(TxnKind::ReadExclusive);
                            e.waiting_cpu = entry.waiting_cpu;
                            e.write_pending = entry.write_pending;
                            e
                        })
                        // pfsim-lint: allow(K002) -- re-allocating the MSHR slot freed by the remove above
                        .expect("slot just freed");
                    self.fx.send(
                        self.cfg.geometry,
                        done,
                        n,
                        home,
                        Msg::CohReq {
                            block,
                            req: DirRequest::ReadExclusive {
                                from: NodeId::new(n),
                            },
                        },
                    );
                    self.unblock_drain(n, DrainBlock::MshrFull, done);
                    return;
                }
                if entry.write_pending {
                    self.complete_write(n, done);
                }
                self.unblock_drain(n, DrainBlock::MshrFull, done);
            }
            other => unreachable!("SLC received non-SLC message {other:?}"),
        }
    }

    /// A data reply fills the SLC, completes the waiting transaction, and
    /// resumes a blocked processor or follows up with an ownership upgrade
    /// as needed.
    fn slc_fill(&mut self, n: u16, block: BlockAddr, exclusive: bool, done: Cycle) {
        let ni = n as usize - self.base;

        let entry = self.nodes[ni]
            .mshr
            .remove(block)
            // pfsim-lint: allow(K002) -- protocol trap: a data reply always matches an open transaction
            .expect("data reply without transaction");

        // Insert the block; a finite SLC may evict a victim.
        let state = if exclusive {
            LineState::Modified
        } else {
            LineState::Shared
        };
        let tagged =
            entry.kind == TxnKind::Prefetch && !entry.prefetch_consumed && !entry.waiting_cpu;
        let eviction = self.nodes[ni].slc.fill(block, state, tagged);
        match eviction {
            Eviction::None => {}
            Eviction::Clean(victim) => {
                let node = &mut self.nodes[ni];
                node.flc.invalidate(victim);
                node.removal
                    .insert(victim.as_u64(), crate::stats::MissCause::Replacement);
                if self.fx.check_on() {
                    self.fx.hook(HookRecord::Evict {
                        cpu: n,
                        block: victim,
                        dirty: false,
                    });
                }
                // Clean copies are dropped silently; the directory's
                // presence bit goes stale and a future invalidation will
                // simply be acknowledged without effect.
            }
            Eviction::Dirty(victim) => {
                let node = &mut self.nodes[ni];
                node.flc.invalidate(victim);
                node.removal
                    .insert(victim.as_u64(), crate::stats::MissCause::Replacement);
                node.stats.writebacks += 1;
                if self.fx.check_on() {
                    self.fx.hook(HookRecord::Evict {
                        cpu: n,
                        block: victim,
                        dirty: true,
                    });
                }
                let home = home_of(self.cfg, victim);
                self.fx.send(
                    self.cfg.geometry,
                    done,
                    n,
                    home,
                    Msg::CohReq {
                        block: victim,
                        req: DirRequest::Writeback {
                            from: NodeId::new(n),
                        },
                    },
                );
            }
        }

        if self.fx.check_on() {
            self.fx.hook(HookRecord::Fill {
                cpu: n,
                block,
                exclusive,
            });
        }

        if entry.waiting_cpu {
            self.serve_waiting_read(n, block, done);
        }

        if entry.write_pending {
            if exclusive {
                self.complete_write(n, done);
            } else {
                // Ownership still needed: chain an upgrade. The slot just
                // freed guarantees space.
                let node = &mut self.nodes[ni];
                node.mshr
                    .alloc(block, {
                        let mut e = MshrEntry::new(TxnKind::Upgrade);
                        e.write_pending = true;
                        e
                    })
                    // pfsim-lint: allow(K002) -- re-allocating the MSHR slot freed by the remove above
                    .expect("slot just freed");
                let home = home_of(self.cfg, block);
                self.fx.send(
                    self.cfg.geometry,
                    done,
                    n,
                    home,
                    Msg::CohReq {
                        block,
                        req: DirRequest::Upgrade {
                            from: NodeId::new(n),
                        },
                    },
                );
            }
        }

        self.unblock_drain(n, DrainBlock::MshrFull, done);
    }

    /// A write transaction completed: release-consistency bookkeeping
    /// (and, under sequential consistency, the waiting processor resumes).
    fn complete_write(&mut self, n: u16, at: Cycle) {
        let ni = n as usize - self.base;
        debug_assert!(self.nodes[ni].pending_write_txns > 0);
        self.nodes[ni].pending_write_txns -= 1;
        if self.nodes[ni].pending_write_txns == 0 {
            self.unblock_drain(n, DrainBlock::ReleasePending, at);
        }
        self.resume_write(n, at);
    }

    /// Resumes a processor blocked on a write (sequential consistency).
    fn resume_write(&mut self, n: u16, at: Cycle) {
        let ni = n as usize - self.base;
        if self.cfg.consistency == crate::ConsistencyModel::Sequential
            && self.nodes[ni].status == CpuStatus::WaitWrite
        {
            let issue = self.nodes[ni].issue_time;
            self.nodes[ni].stats.write_stall += at.saturating_since(issue).saturating_sub(1);
            self.resume_cpu(n, at);
        }
    }

    // ----------------------------------------------------------------
    // Home-side (directory, memory, locks, barriers)
    // ----------------------------------------------------------------

    /// Serves one request at the home node's controller: occupancy-limited
    /// throughput plus pipeline latency.
    fn home_service(&mut self, ni: usize, now: Cycle) -> Cycle {
        self.nodes[ni].dir_server.serve(now, self.cfg.dir_occupancy) + self.cfg.dir_extra_latency
    }

    fn deliver(&mut self, n: u16, msg: Msg, now: Cycle) {
        let ni = n as usize - self.base;
        match msg {
            Msg::CohReq { block, req } => {
                let t0 = self.home_service(ni, now);
                if self.fx.check_on() {
                    match req {
                        DirRequest::Writeback { from } => {
                            self.fx.hook(HookRecord::HomeBeginWriteback {
                                home: n,
                                block,
                                from: from.as_u16(),
                            });
                        }
                        _ => self.fx.hook(HookRecord::HomeBegin { home: n, block }),
                    }
                }
                let mut actions = std::mem::take(self.dir_actions);
                actions.clear();
                self.nodes[ni].dir.request(block, req, &mut actions);
                self.exec_dir_actions(n, block, &actions, t0);
                *self.dir_actions = actions;
            }
            Msg::FetchReply { block, had_copy } => {
                let t0 = self.home_service(ni, now);
                if self.fx.check_on() {
                    self.fx.hook(HookRecord::HomeBeginFetch {
                        home: n,
                        block,
                        had_copy,
                    });
                }
                let mut actions = std::mem::take(self.dir_actions);
                actions.clear();
                self.nodes[ni].dir.fetch_done(block, had_copy, &mut actions);
                self.exec_dir_actions(n, block, &actions, t0);
                *self.dir_actions = actions;
            }
            Msg::InvalAck { block } => {
                let t0 = self.home_service(ni, now);
                if self.fx.check_on() {
                    self.fx.hook(HookRecord::HomeBegin { home: n, block });
                }
                let mut actions = std::mem::take(self.dir_actions);
                actions.clear();
                self.nodes[ni].dir.inval_ack(block, &mut actions);
                self.exec_dir_actions(n, block, &actions, t0);
                *self.dir_actions = actions;
            }
            Msg::Fetch { .. }
            | Msg::Inval { .. }
            | Msg::DataReply { .. }
            | Msg::AckReply { .. } => {
                // Fast path: the SLC is idle and nothing else is due at
                // `now` (strictly later or empty queue), so queueing the
                // message and scheduling `SlcWork(now)` would fire that
                // event as the very next pop with identical state. Serve
                // the message inline instead and skip the round-trip. The
                // peek must be strict: a same-time event with an earlier
                // sequence number would pop first. The node-local half of
                // the guard (`idle`) is computed before the push either
                // way: under `Fx::Log` it rides along as the schedule's
                // fusable flag so the leader can re-run the full guard.
                let idle =
                    self.nodes[ni].incoming.is_empty() && self.nodes[ni].slc_server.is_idle_at(now);
                if idle && self.fx.can_fuse(now) {
                    self.nodes[ni].slc_scheduled_at = None;
                    let done = self.nodes[ni].slc_server.serve(now, self.cfg.slc_service);
                    self.handle_slc_msg(n, msg, done);
                    if let Some(at) = self.reschedule_or_fuse(n) {
                        self.slc_work(n, at);
                    }
                } else {
                    self.nodes[ni].incoming.push_back(msg);
                    notify_slc(&mut self.nodes[ni], &mut self.fx, n, now, idle);
                }
            }
            Msg::LockReq { lock, from } => {
                let t0 = self.home_service(ni, now);
                if self.nodes[ni].locks.acquire(lock, from) {
                    self.fx.send(
                        self.cfg.geometry,
                        t0,
                        n,
                        from.as_u16(),
                        Msg::LockGrant { lock },
                    );
                }
            }
            Msg::UnlockReq { lock, from } => {
                let t0 = self.home_service(ni, now);
                if let Some(next) = self.nodes[ni].locks.release(lock, from) {
                    self.fx.send(
                        self.cfg.geometry,
                        t0,
                        n,
                        next.as_u16(),
                        Msg::LockGrant { lock },
                    );
                }
            }
            Msg::LockGrant { lock } => {
                debug_assert_eq!(self.nodes[ni].status, CpuStatus::WaitLock);
                if self.fx.check_on() {
                    self.fx.hook(HookRecord::LockGranted { cpu: n, lock });
                }
                let issue = self.nodes[ni].issue_time;
                self.nodes[ni].stats.sync_stall += now.saturating_since(issue);
                self.resume_cpu(n, now + 1);
            }
            Msg::BarrierArrive { id, from } => {
                let expected = self.cfg.nodes as usize;
                if let Some(participants) = self.nodes[ni].barriers.arrive(id, from, expected) {
                    let t0 = self.home_service(ni, now);
                    for p in participants {
                        self.fx.send(
                            self.cfg.geometry,
                            t0,
                            n,
                            p.as_u16(),
                            Msg::BarrierRelease { id },
                        );
                    }
                }
            }
            Msg::BarrierRelease { id } => {
                debug_assert_eq!(self.nodes[ni].status, CpuStatus::WaitBarrier);
                if self.fx.check_on() {
                    self.fx.hook(HookRecord::BarrierReleased { cpu: n, id });
                }
                let issue = self.nodes[ni].issue_time;
                self.nodes[ni].stats.barrier_stall += now.saturating_since(issue);
                self.resume_cpu(n, now + 1);
            }
        }
    }

    /// Executes the directory's actions at home node `h`, threading the
    /// memory latency into data replies.
    fn exec_dir_actions(&mut self, h: u16, block: BlockAddr, actions: &ActionBuf, t0: Cycle) {
        let hi = h as usize - self.base;
        let mut data_ready = t0;
        for action in actions.iter() {
            match action {
                DirAction::ReadMemory => {
                    if self.fx.check_on() {
                        self.fx.hook(HookRecord::HomeReadMemory { block });
                    }
                    let (start, end) = self.nodes[hi]
                        .mem
                        .serve_timed(data_ready, self.cfg.mem_occupancy);
                    let _ = start;
                    data_ready = end + self.cfg.mem_extra_latency;
                }
                DirAction::WriteMemory => {
                    if self.fx.check_on() {
                        self.fx.hook(HookRecord::HomeWriteMemory { block });
                    }
                    self.nodes[hi].mem.serve(t0, self.cfg.mem_occupancy);
                }
                &DirAction::SendData {
                    to,
                    exclusive,
                    prefetch,
                } => {
                    if self.fx.check_on() {
                        self.fx.hook(HookRecord::HomeSendData {
                            block,
                            to: to.as_u16(),
                        });
                    }
                    self.fx.send(
                        self.cfg.geometry,
                        data_ready,
                        h,
                        to.as_u16(),
                        Msg::DataReply {
                            block,
                            exclusive,
                            prefetch,
                        },
                    );
                }
                DirAction::SendAck { to } => {
                    self.fx.send(
                        self.cfg.geometry,
                        t0,
                        h,
                        to.as_u16(),
                        Msg::AckReply { block },
                    );
                }
                DirAction::Fetch { owner } => {
                    self.fx.send(
                        self.cfg.geometry,
                        t0,
                        h,
                        owner.as_u16(),
                        Msg::Fetch {
                            block,
                            inval: false,
                            home: NodeId::new(h),
                        },
                    );
                }
                DirAction::FetchInval { owner } => {
                    self.fx.send(
                        self.cfg.geometry,
                        t0,
                        h,
                        owner.as_u16(),
                        Msg::Fetch {
                            block,
                            inval: true,
                            home: NodeId::new(h),
                        },
                    );
                }
                DirAction::Invalidate { targets } => {
                    for target in targets.iter() {
                        self.fx.send(
                            self.cfg.geometry,
                            t0,
                            h,
                            target.as_u16(),
                            Msg::Inval {
                                block,
                                home: NodeId::new(h),
                            },
                        );
                    }
                }
            }
        }
    }
}

/// The simulated multiprocessor.
///
/// Couples a [`SystemConfig`] with a [`Workload`] and runs the parallel
/// section to completion, producing a [`SimResult`]. [`run`](System::run)
/// is the serial kernel; [`run_threads`](System::run_threads) is the
/// sharded kernel, bit-identical to serial on every statistic.
///
/// # Examples
///
/// ```
/// use pfsim::{System, SystemConfig};
/// use pfsim_workloads::micro;
///
/// let wl = micro::sequential_walk(16, 64, 1);
/// let result = System::new(SystemConfig::paper_baseline(), wl).run();
/// assert!(result.read_misses() > 0);
/// ```
pub struct System<W: Workload> {
    pub(crate) cfg: SystemConfig,
    pub(crate) workload: W,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) mesh: Mesh,
    pub(crate) nodes: Vec<Node>,
    pub(crate) last_time: Cycle,
    /// Reusable scratch buffer for directory actions: `deliver` borrows it
    /// per message so the protocol hot path never allocates.
    pub(crate) dir_actions: ActionBuf,
    /// Observability registry (inert unless `cfg.instrument`).
    pub(crate) obs: Obs,
    /// Optional correctness observer (see [`crate::check`]); `None` in
    /// normal runs, so every hook site costs one predictable branch.
    pub(crate) check: Option<Box<dyn CheckSink>>,
    /// Whether the initial `CpuStep` events have been seeded. Guards the
    /// seeding so [`run`](Self::run) after [`run_until`](Self::run_until)
    /// (or after a checkpoint restore) resumes instead of restarting.
    pub(crate) started: bool,
}

impl<W: Workload> System<W> {
    /// Creates a system running `workload` on the machine described by
    /// `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the workload's processor count differs from the
    /// configured node count.
    pub fn new(cfg: SystemConfig, workload: W) -> Self {
        assert_eq!(
            workload.num_cpus(),
            cfg.nodes as usize,
            "workload built for {} cpus but the system has {} nodes",
            workload.num_cpus(),
            cfg.nodes
        );
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let record = match cfg.record_misses {
                    RecordMisses::None => false,
                    RecordMisses::Cpu(c) => c == i as usize,
                    RecordMisses::All => true,
                };
                Node::new(&cfg, record)
            })
            .collect();
        System {
            mesh: Mesh::new(cfg.mesh),
            obs: Obs::new(cfg.instrument),
            cfg,
            workload,
            queue: EventQueue::new(),
            nodes,
            last_time: Cycle::ZERO,
            dir_actions: ActionBuf::new(),
            check: None,
            started: false,
        }
    }

    /// Installs a correctness observer; its hooks fire at every
    /// data-movement event of the run. Install before [`run`](Self::run).
    pub fn set_check_sink(&mut self, sink: Box<dyn CheckSink>) {
        self.check = Some(sink);
    }

    /// Removes and returns the installed observer (downcast it via
    /// [`CheckSink::into_any`] to read results).
    pub fn take_check_sink(&mut self) -> Option<Box<dyn CheckSink>> {
        self.check.take()
    }

    /// Runs the workload to completion and returns the statistics.
    ///
    /// Running twice is a no-op the second time (the workload is
    /// exhausted); create a new `System` per run.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks (the event queue drains while a
    /// processor is still blocked), which indicates a protocol bug.
    pub fn run(&mut self) -> SimResult {
        self.seed();
        let instrumented = self.obs.reg.enabled();
        while let Some((t, ev)) = self.queue.pop() {
            self.dispatch_one(t, ev, instrumented);
        }
        self.finish_run(instrumented)
    }

    /// Runs the event loop only through pclock `boundary`: every event
    /// with `time <= boundary` is dispatched, then the system pauses with
    /// all later events still queued. A subsequent [`run`](Self::run)
    /// resumes from exactly this point and produces results bit-identical
    /// to an uninterrupted run — the pause falls between event pops,
    /// which the simulation cannot observe. This is the warmup boundary
    /// for checkpointing (see [`crate::checkpoint`]).
    pub fn run_until(&mut self, boundary: Cycle) {
        self.seed();
        let instrumented = self.obs.reg.enabled();
        while self.queue.peek_time().is_some_and(|t| t <= boundary) {
            let Some((t, ev)) = self.queue.pop() else {
                break;
            };
            self.dispatch_one(t, ev, instrumented);
        }
    }

    /// Schedules the initial `CpuStep` for every node, exactly once per
    /// system (restored systems inherit `started` from their snapshot and
    /// skip this).
    fn seed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for n in 0..self.cfg.nodes {
            self.queue.schedule(Cycle::ZERO, Ev::CpuStep(n));
        }
    }

    /// Dispatches one popped event through the serial kernel: the body of
    /// the [`run`](Self::run) hot loop, shared with
    /// [`run_until`](Self::run_until).
    #[inline(always)]
    fn dispatch_one(&mut self, t: Cycle, ev: Ev, instrumented: bool) {
        self.last_time = self.last_time.max(t);
        if instrumented {
            self.observe_event(&ev);
        }
        let mut core = Core {
            cfg: &self.cfg,
            base: 0,
            nodes: &mut self.nodes,
            workload: &mut self.workload,
            fx: Fx::Live {
                queue: &mut self.queue,
                mesh: &mut self.mesh,
                check: &mut self.check,
            },
            dir_actions: &mut self.dir_actions,
        };
        core.dispatch(ev, t);
    }

    /// Swaps the prefetching scheme on a paused system: the config is
    /// updated and every node gets a freshly built (state-empty)
    /// prefetcher. This is how a warmed checkpoint taken under
    /// [`Scheme::None`] becomes one cell of a scheme ablation — the
    /// machine state (caches, directory, in-flight traffic) carries over,
    /// the scheme starts detecting from the boundary onward.
    pub fn reconfigure_scheme(&mut self, scheme: Scheme) {
        self.cfg.scheme = scheme;
        for node in &mut self.nodes {
            node.prefetcher = scheme.build(self.cfg.geometry);
        }
    }

    /// Runs the workload to completion on `threads` worker threads using
    /// the conservative sharded kernel, producing results bit-identical
    /// to [`run`](Self::run): same pclock total, same per-node stats, same
    /// metrics snapshot, same oracle hook sequence (see `DESIGN.md` §12).
    ///
    /// `threads <= 1` exercises the identical shard machinery inline
    /// (no threads spawned), which is the determinism reference. The
    /// workload is cloned once per worker; each clone only ever advances
    /// its own nodes' streams.
    ///
    /// # Panics
    ///
    /// Panics on deadlock, exactly as [`run`](Self::run).
    pub fn run_threads(&mut self, threads: usize) -> SimResult
    where
        W: Clone + Send,
    {
        crate::shard::run_threads(self, threads)
    }

    /// Hot-path instrumentation: called once per popped event when the
    /// registry is enabled. Counts the event by kind and samples queue
    /// and per-node MSHR occupancy (an every-event sample, so busy nodes
    /// weight the distribution by their event traffic).
    fn observe_event(&mut self, ev: &Ev) {
        let (wheel, overdue, overflow) = self.queue.depth_profile();
        let mshr = self.nodes[ev.node() as usize].mshr.len() as u64;
        self.obs.observe_raw(
            ev,
            (wheel + overdue + overflow) as u64,
            overflow as u64,
            mshr,
        );
    }

    /// Everything after the event loop drains: deadlock detection, the
    /// final oracle hook, clock folding and statistics assembly. Shared
    /// verbatim by the serial and sharded kernels so the two can never
    /// diverge in how a run is summarized.
    pub(crate) fn finish_run(&mut self, instrumented: bool) -> SimResult {
        let stuck: Vec<String> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| node.status != CpuStatus::Done)
            .map(|(i, node)| {
                format!(
                    "node {i}: {:?} drain={:?} pending_writes={} flwb={} mshr={} incoming={}",
                    node.status,
                    node.drain_block,
                    node.pending_write_txns,
                    node.flwb.len(),
                    node.mshr.len(),
                    node.incoming.len(),
                )
            })
            .collect();
        if !stuck.is_empty() {
            let mut detail = stuck.join("\n");
            for (i, node) in self.nodes.iter().enumerate() {
                for (block, entry) in node.mshr.iter() {
                    let home = self.home_of(block);
                    let dir = &self.nodes[home as usize].dir;
                    detail.push_str(&format!(
                        "\nnode {i} mshr {block}: {:?} -> home {home} state {:?} busy={:?} slc_at_owner={:?}",
                        entry.kind,
                        dir.state(block),
                        dir.busy_detail(block),
                        self.nodes.iter().enumerate().filter(|(_, nd)| nd.slc.contains(block)).map(|(j, _)| j).collect::<Vec<_>>(),
                    ));
                }
            }
            // pfsim-lint: allow(K002) -- deadlock trap: failing loudly with full diagnostics is the designed response
            panic!("simulation deadlocked with processors still blocked:\n{detail}");
        }
        if let Some(k) = self.check.as_deref_mut() {
            k.run_finished();
        }

        // Fold in each processor's final run-ahead segment: a trace that
        // ends in compute-only work retires past the last scheduled event.
        for node in &self.nodes {
            self.last_time = self.last_time.max(node.cpu_time);
        }

        let dir: DirStats = self.nodes.iter().fold(DirStats::default(), |mut acc, n| {
            let s = n.dir.stats();
            acc.memory_supplied += s.memory_supplied;
            acc.owner_supplied += s.owner_supplied;
            acc.invalidations += s.invalidations;
            acc.writebacks += s.writebacks;
            acc.stale_writebacks += s.stale_writebacks;
            acc
        });
        let metrics = if instrumented {
            self.finalize_obs();
            Some(self.obs.reg.snapshot())
        } else {
            None
        };
        SimResult {
            exec_cycles: self.last_time.as_u64(),
            net: self.mesh.stats(),
            dir,
            miss_traces: self
                .nodes
                .iter_mut()
                .map(|n| std::mem::take(&mut n.miss_trace))
                .collect(),
            nodes: self.nodes.iter().map(|n| n.stats).collect(),
            metrics,
        }
    }

    /// End-of-run gauge folding: server utilization, MSHR high water,
    /// network channel utilization, SLC footprint and prefetcher
    /// telemetry, summed (or maxed) across nodes.
    fn finalize_obs(&mut self) {
        let mut slc_busy = 0u64;
        let mut dir_busy = 0u64;
        let mut mem_busy = 0u64;
        let mut mshr_hw = 0u64;
        let mut valid_lines = 0u64;
        let mut telemetry: Vec<(&'static str, u64)> = Vec::new();
        let mut scratch = Vec::new();
        for node in &self.nodes {
            slc_busy += node.slc_server.busy_cycles();
            dir_busy += node.dir_server.busy_cycles();
            mem_busy += node.mem.busy_cycles();
            mshr_hw = mshr_hw.max(node.mshr.high_water() as u64);
            valid_lines += node.slc.valid_lines() as u64;
            scratch.clear();
            node.prefetcher.telemetry(&mut scratch);
            for &(name, v) in &scratch {
                match telemetry.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, total)) => *total += v,
                    None => telemetry.push((name, v)),
                }
            }
        }
        let reg = &mut self.obs.reg;
        reg.record("slc_busy_cycles", slc_busy);
        reg.record("dir_busy_cycles", dir_busy);
        reg.record("mem_busy_cycles", mem_busy);
        reg.record_max("mshr_high_water", mshr_hw);
        reg.record("slc_valid_lines", valid_lines);
        let (links, link_busy, link_busy_max) = self.mesh.link_utilization();
        reg.record("net_links", links as u64);
        reg.record("net_link_busy_cycles", link_busy);
        reg.record_max("net_link_busy_max", link_busy_max);
        for (name, v) in telemetry {
            reg.record(name, v);
        }
    }

    /// Per-node resource utilization snapshot (diagnostics).
    pub fn server_report(&self) -> Vec<(u64, u64, u64)> {
        self.nodes
            .iter()
            .map(|n| {
                (
                    n.slc_server.busy_cycles(),
                    n.dir_server.busy_cycles(),
                    n.mem.busy_cycles(),
                )
            })
            .collect()
    }

    /// Audits system-wide coherence invariants (used by tests): every
    /// directory entry must agree with the cache states it records.
    ///
    /// # Panics
    ///
    /// Panics on any violation.
    pub fn audit_coherence(&self) {
        for home in &self.nodes {
            for (block, state) in home.dir.iter() {
                if home.dir.is_busy(block) {
                    continue; // transient: caches may legitimately disagree
                }
                match state {
                    pfsim_coherence::DirState::Modified(owner) => {
                        let line = self.nodes[owner.index()].slc.lookup(block);
                        // The owner may have a writeback or re-fetch in
                        // flight; otherwise it must hold the block dirty.
                        if let Some(line) = line {
                            assert_eq!(
                                line.state,
                                LineState::Modified,
                                "{block} dir=Modified({owner}) but owner holds it clean"
                            );
                        }
                        for (i, other) in self.nodes.iter().enumerate() {
                            if i != owner.index() {
                                assert!(
                                    other.slc.lookup(block).is_none(),
                                    "{block} modified at {owner} but also cached at node {i}"
                                );
                            }
                        }
                    }
                    pfsim_coherence::DirState::Shared(sharers) => {
                        for (i, other) in self.nodes.iter().enumerate() {
                            if let Some(line) = other.slc.lookup(block) {
                                assert!(
                                    sharers.contains(NodeId::new(i as u16)),
                                    "{block} cached at node {i} without presence bit"
                                );
                                assert_eq!(line.state, LineState::Shared);
                            }
                        }
                    }
                    pfsim_coherence::DirState::Uncached => {
                        for (i, other) in self.nodes.iter().enumerate() {
                            assert!(
                                other.slc.lookup(block).is_none(),
                                "{block} uncached at home but cached at node {i}"
                            );
                        }
                    }
                }
            }
        }
    }

    fn home_of(&self, block: BlockAddr) -> u16 {
        home_of(&self.cfg, block)
    }
}
