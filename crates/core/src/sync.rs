//! Home-side synchronization: queue-based locks and barriers.

use std::collections::VecDeque;

use pfsim_mem::{Addr, FxHashMap, NodeId};

/// The queue-based lock mechanism at memory, as in DASH: the home node of
/// a lock's address keeps the holder and a FIFO of waiters, and a release
/// hands the lock to the next waiter directly (one message), without any
/// retry traffic.
///
/// # Examples
///
/// ```
/// use pfsim::LockTable;
/// use pfsim_mem::{Addr, NodeId};
///
/// let mut t = LockTable::new();
/// let l = Addr::new(0x1000);
/// assert!(t.acquire(l, NodeId::new(1)));      // granted immediately
/// assert!(!t.acquire(l, NodeId::new(2)));     // queued
/// assert_eq!(t.release(l, NodeId::new(1)), Some(NodeId::new(2)));
/// assert_eq!(t.release(l, NodeId::new(2)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    locks: FxHashMap<Addr, LockState>,
}

#[derive(Debug, Clone, Default)]
struct LockState {
    holder: Option<NodeId>,
    waiters: VecDeque<NodeId>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Processes an acquire request from `from`. Returns `true` if the
    /// lock was granted immediately; otherwise the requester is queued.
    pub fn acquire(&mut self, lock: Addr, from: NodeId) -> bool {
        let state = self.locks.entry(lock).or_default();
        if state.holder.is_none() {
            state.holder = Some(from);
            true
        } else {
            state.waiters.push_back(from);
            false
        }
    }

    /// Processes a release from `from`. Returns the next waiter the lock
    /// was handed to, if any.
    ///
    /// # Panics
    ///
    /// Panics if `from` does not hold the lock (a protocol violation).
    pub fn release(&mut self, lock: Addr, from: NodeId) -> Option<NodeId> {
        let state = self
            .locks
            .get_mut(&lock)
            // pfsim-lint: allow(K002) -- protocol trap: releasing an unheld lock means the workload is malformed
            .unwrap_or_else(|| panic!("release of unknown lock {lock}"));
        assert_eq!(state.holder, Some(from), "release by non-holder");
        state.holder = state.waiters.pop_front();
        state.holder
    }

    /// The node currently holding `lock`, if any.
    pub fn holder(&self, lock: Addr) -> Option<NodeId> {
        self.locks.get(&lock).and_then(|s| s.holder)
    }

    /// Number of nodes queued on `lock`.
    pub fn waiters(&self, lock: Addr) -> usize {
        self.locks.get(&lock).map_or(0, |s| s.waiters.len())
    }
}

/// Barrier bookkeeping at the barrier's home node.
///
/// Barrier identifiers are unique per barrier *instance* (the workload
/// builders allocate a fresh id per episode), so no reinitialization race
/// exists.
#[derive(Debug, Clone, Default)]
pub struct BarrierTable {
    barriers: FxHashMap<u32, Vec<NodeId>>,
}

impl BarrierTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `from` arrived at barrier `id`. When the `expected`-th
    /// participant arrives, returns all of them (the caller broadcasts the
    /// release) and forgets the barrier.
    pub fn arrive(&mut self, id: u32, from: NodeId, expected: usize) -> Option<Vec<NodeId>> {
        let arrived = self.barriers.entry(id).or_default();
        arrived.push(from);
        if arrived.len() == expected {
            self.barriers.remove(&id)
        } else {
            None
        }
    }

    /// Number of barriers currently mid-flight.
    pub fn open_barriers(&self) -> usize {
        self.barriers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn lock_hands_off_in_fifo_order() {
        let mut t = LockTable::new();
        let l = Addr::new(0x40);
        assert!(t.acquire(l, n(0)));
        assert!(!t.acquire(l, n(1)));
        assert!(!t.acquire(l, n(2)));
        assert_eq!(t.waiters(l), 2);
        assert_eq!(t.release(l, n(0)), Some(n(1)));
        assert_eq!(t.release(l, n(1)), Some(n(2)));
        assert_eq!(t.release(l, n(2)), None);
        assert_eq!(t.holder(l), None);
    }

    #[test]
    fn independent_locks_do_not_interfere() {
        let mut t = LockTable::new();
        assert!(t.acquire(Addr::new(0x40), n(0)));
        assert!(t.acquire(Addr::new(0x80), n(1)));
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn release_by_non_holder_panics() {
        let mut t = LockTable::new();
        t.acquire(Addr::new(0x40), n(0));
        t.release(Addr::new(0x40), n(1));
    }

    #[test]
    fn barrier_releases_only_when_full() {
        let mut b = BarrierTable::new();
        assert_eq!(b.arrive(7, n(0), 3), None);
        assert_eq!(b.arrive(7, n(1), 3), None);
        let all = b.arrive(7, n(2), 3).unwrap();
        assert_eq!(all, vec![n(0), n(1), n(2)]);
        assert_eq!(b.open_barriers(), 0);
    }

    #[test]
    fn distinct_barriers_overlap() {
        let mut b = BarrierTable::new();
        b.arrive(1, n(0), 2);
        b.arrive(2, n(1), 2);
        assert_eq!(b.open_barriers(), 2);
        assert!(b.arrive(1, n(1), 2).is_some());
        assert!(b.arrive(2, n(0), 2).is_some());
    }
}
