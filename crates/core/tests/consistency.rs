//! Release-consistency and write-buffer semantics: writes never stall the
//! processor (until a buffer fills), releases wait for pending writes,
//! the FLWB is FIFO, and barriers order phases across processors.

use pfsim::{System, SystemConfig};
use pfsim_mem::{Addr, Pc};
use pfsim_workloads::{Op, TraceWorkload};

fn solo(ops: Vec<Op>) -> TraceWorkload {
    let mut traces = vec![Vec::new(); 16];
    traces[0] = ops;
    TraceWorkload::new("solo", traces)
}

const LOCAL: u64 = 16 * 4096; // page homed on node 0
const REMOTE: u64 = 21 * 4096; // page homed on node 5

fn read(addr: u64) -> Op {
    Op::Read {
        addr: Addr::new(addr),
        pc: Pc::new(0x400),
    }
}

fn write(addr: u64) -> Op {
    Op::Write {
        addr: Addr::new(addr),
        pc: Pc::new(0x404),
    }
}

/// Writes are fire-and-forget under release consistency: a long string of
/// remote writes costs the processor ~1 pclock each, nowhere near the
/// round-trip each transaction takes in the memory system.
#[test]
fn buffered_writes_do_not_stall_the_processor() {
    // 6 writes to distinct remote blocks fit in the 8-entry FLWB.
    let ops: Vec<Op> = (0..6).map(|k| write(REMOTE + k * 32)).collect();
    let mut sys = System::new(SystemConfig::paper_baseline(), solo(ops));
    let r = sys.run();
    let n = &r.nodes[0];
    assert_eq!(n.writes, 6);
    // CPU retired its trace in ~6 pclocks even though the transactions
    // take tens of cycles each; exec time reflects the drain, not a
    // stalled CPU.
    assert_eq!(n.flwb_stall, 0);
    sys.audit_coherence();
}

/// When the FLWB fills, the processor stalls until the SLC drains an
/// entry — the paper's only write-stall condition.
#[test]
fn full_flwb_stalls_the_processor() {
    let ops: Vec<Op> = (0..32).map(|k| write(REMOTE + k * 32)).collect();
    let r = System::new(SystemConfig::paper_baseline(), solo(ops)).run();
    assert!(
        r.nodes[0].flwb_stall > 0,
        "32 back-to-back writes must fill the 8-entry FLWB"
    );
}

/// A release (unlock) drains after all prior writes complete: the
/// consumer that acquires the lock afterwards always sees the writes'
/// coherence effects (its reads miss on the freshly-written blocks).
#[test]
fn release_orders_prior_writes() {
    let lock = Addr::new(60 * 4096);
    let mut traces = vec![Vec::new(); 16];
    // Producer: acquire, write 8 blocks, release.
    traces[0].push(Op::Acquire { lock });
    for k in 0..8 {
        traces[0].push(write(REMOTE + k * 32));
    }
    traces[0].push(Op::Release { lock });
    // Consumer: read the blocks cold first (so copies exist to
    // invalidate), then re-read under the lock.
    for k in 0..8 {
        traces[1].push(read(REMOTE + k * 32));
    }
    traces[1].push(Op::Acquire { lock });
    for k in 0..8 {
        traces[1].push(read(REMOTE + k * 32));
    }
    traces[1].push(Op::Release { lock });
    let mut sys = System::new(
        SystemConfig::paper_baseline(),
        TraceWorkload::new("release-order", traces),
    );
    let r = sys.run();
    sys.audit_coherence();
    // Whoever acquired second observed the other's effects; in every
    // interleaving the consumer's second read round can only hit if the
    // producer ran after — and then the producer's writes invalidated
    // nothing. Either way the counts must be consistent:
    let consumer = &r.nodes[1];
    assert_eq!(consumer.reads, 16);
    assert!(consumer.read_misses >= 8, "{consumer:?}");
}

/// The FLWB is FIFO: a read issued after writes to the *same block*
/// observes the SLC state those writes created (the write upgraded the
/// block to Modified, so the read hits locally instead of re-fetching).
#[test]
fn reads_do_not_bypass_earlier_writes() {
    let a = LOCAL;
    let ops = vec![
        read(a),                 // miss: bring the block in Shared
        write(a),                // upgrade to Modified (buffered)
        read(a + 16 * 4096 * 4), // unrelated read, evicts a from the FLC? no: different set
        read(a),                 // FLC hit (same block still in FLC)
    ];
    let r = System::new(SystemConfig::paper_baseline(), solo(ops)).run();
    // The final read hits the FLC: one miss for `a`, one for the
    // unrelated block.
    assert_eq!(r.nodes[0].read_misses, 2);
}

/// Barriers separate phases globally: writes before the barrier are
/// visible (as coherence misses) to all readers after it, on every node.
#[test]
fn barrier_separates_phases() {
    let mut traces = vec![Vec::new(); 16];
    for k in 0..16u64 {
        traces[0].push(write(REMOTE + k * 32));
    }
    for trace in traces.iter_mut() {
        trace.push(Op::Barrier { id: 0 });
    }
    for (cpu, trace) in traces.iter_mut().enumerate().skip(1) {
        for k in 0..16u64 {
            trace.push(Op::Read {
                addr: Addr::new(REMOTE + k * 32),
                pc: Pc::new(0x500 + cpu as u32),
            });
        }
    }
    let mut sys = System::new(
        SystemConfig::paper_baseline(),
        TraceWorkload::new("barrier-phases", traces),
    );
    let r = sys.run();
    sys.audit_coherence();
    for cpu in 1..16 {
        assert_eq!(r.nodes[cpu].read_misses, 16, "cpu {cpu}");
    }
    // The writer ends up fetched-from for every block (it held them all
    // Modified), so the directory supplied owner data at least 16 times.
    assert!(r.dir.owner_supplied >= 16);
}

/// Lock hand-off is direct: with N waiters, each release grants the next
/// waiter without a retry storm (bounded message count).
#[test]
fn queue_based_locks_hand_off_without_retries() {
    let lock = Addr::new(60 * 4096);
    let mut traces = vec![Vec::new(); 16];
    for trace in traces.iter_mut() {
        trace.push(Op::Acquire { lock });
        trace.push(Op::Compute { cycles: 5 });
        trace.push(Op::Release { lock });
    }
    let mut sys = System::new(
        SystemConfig::paper_baseline(),
        TraceWorkload::new("lock-queue", traces),
    );
    let r = sys.run();
    sys.audit_coherence();
    // 16 acquires + 16 releases + 16 grants = 48 lock messages; allow the
    // barrierless trace a little slack but nothing like a spin storm.
    assert!(
        r.net.messages <= 60,
        "lock protocol sent {} messages",
        r.net.messages
    );
}

/// Sync stall is accounted to the waiters: with heavy contention, total
/// sync stall grows roughly quadratically with the queue.
#[test]
fn contended_locks_accumulate_sync_stall() {
    let lock = Addr::new(60 * 4096);
    let build = |holders: usize| {
        let mut traces = vec![Vec::new(); 16];
        for trace in traces.iter_mut().take(holders) {
            trace.push(Op::Acquire { lock });
            trace.push(Op::Compute { cycles: 200 });
            trace.push(Op::Release { lock });
        }
        TraceWorkload::new("contended", traces)
    };
    let few = System::new(SystemConfig::paper_baseline(), build(2)).run();
    let many = System::new(SystemConfig::paper_baseline(), build(12)).run();
    let few_stall: u64 = few.total(|n| n.sync_stall);
    let many_stall: u64 = many.total(|n| n.sync_stall);
    assert!(
        many_stall > 10 * few_stall,
        "contention did not accumulate: {few_stall} vs {many_stall}"
    );
}

/// Sequential consistency stalls the processor on every write; release
/// consistency hides that latency entirely — the paper's §1 premise.
#[test]
fn sequential_consistency_exposes_write_latency() {
    use pfsim::ConsistencyModel;
    let ops: Vec<pfsim_workloads::Op> = (0..32).map(|k| write(REMOTE + k * 32)).collect();
    let rc = System::new(SystemConfig::paper_baseline(), solo(ops.clone())).run();
    let sc = System::new(
        SystemConfig::paper_baseline().with_consistency(ConsistencyModel::Sequential),
        solo(ops),
    )
    .run();
    // Under SC every write waits a full remote transaction.
    assert!(
        sc.nodes[0].write_stall > 32 * 30,
        "{}",
        sc.nodes[0].write_stall
    );
    assert_eq!(rc.nodes[0].write_stall, 0);
    // The processor's own retirement of the writes is far slower under SC
    // (its trace has no trailing reads, so compare the write stall to the
    // RC buffer-full stall).
    assert!(sc.nodes[0].write_stall > 4 * rc.nodes[0].flwb_stall);
    assert!(sc.exec_cycles > rc.exec_cycles);
}

/// Under sequential consistency a release never waits (writes are already
/// performed), and the results stay coherent.
#[test]
fn sequential_consistency_makes_releases_instant() {
    use pfsim::ConsistencyModel;
    let lock = Addr::new(60 * 4096);
    let mut ops = vec![Op::Acquire { lock }];
    for k in 0..8 {
        ops.push(write(REMOTE + k * 32));
    }
    ops.push(Op::Release { lock });
    let mut sys = System::new(
        SystemConfig::paper_baseline().with_consistency(ConsistencyModel::Sequential),
        solo(ops),
    );
    let r = sys.run();
    sys.audit_coherence();
    assert!(r.nodes[0].write_stall > 0);
}
