//! Randomized stress tests of the full coherence machinery: property-based
//! multi-processor traces over a small shared region, checked for
//! termination (no protocol deadlock), coherence-audit cleanliness and
//! statistics invariants, across prefetching schemes and cache sizes.
//!
//! The trace generator lives in `pfsim_workloads::fuzz` and is shared
//! with the `pfsim-fuzz` consistency fuzzer, so both harnesses hammer
//! the protocol with the same op distribution.

use pfsim::{System, SystemConfig};
use pfsim_mem::{Addr, Pc, SplitMix64};
use pfsim_prefetch::Scheme;
use pfsim_workloads::fuzz::{random_ops, random_workload};
use pfsim_workloads::{Op, TraceWorkload};

fn check(workload: TraceWorkload, scheme: Scheme, finite_slc: bool, instrumented: bool) {
    let mut cfg = SystemConfig::paper_baseline()
        .with_scheme(scheme)
        .with_instrumentation(instrumented);
    if finite_slc {
        // Tiny SLC: maximal replacement churn against in-flight
        // transactions.
        cfg = cfg.with_finite_slc(1024);
    }
    let mut sys = System::new(cfg, workload);
    let r = sys.run(); // panics on deadlock
    sys.audit_coherence(); // panics on divergence
    assert_eq!(r.dir.stale_writebacks, 0);

    for (i, n) in r.nodes.iter().enumerate() {
        assert!(
            n.flc_read_hits + n.slc_read_hits + n.read_misses + n.delayed_hits == n.reads,
            "node {i}: read accounting broken: {n:?}"
        );
        assert!(n.prefetches_useful <= n.prefetches_issued, "node {i}");
        assert_eq!(
            n.cold_misses + n.coherence_misses + n.replacement_misses,
            n.read_misses,
            "node {i}: miss-cause accounting broken"
        );
        if !finite_slc {
            assert_eq!(n.replacement_misses, 0, "node {i}");
            assert_eq!(n.writebacks, 0, "node {i}");
        }
    }
}

/// Random contended traces terminate with coherent caches and
/// consistent statistics, for every scheme, with an infinite SLC
/// (24 seeded cases). Every third case runs with instrumentation on,
/// so the metrics path is stressed too, not just the fast path.
#[test]
fn stress_infinite_slc() {
    let mut rng = SplitMix64::seed_from_u64(0x57e51);
    for case in 0..24 {
        let ops = random_ops(&mut rng);
        let scheme = match rng.random_range(0u8..6) {
            0 => Scheme::None,
            1 => Scheme::Sequential { degree: 2 },
            2 => Scheme::IDetection { degree: 1 },
            3 => Scheme::DDetection { degree: 1 },
            4 => Scheme::DDetectionAdaptive {
                degree: 1,
                max_depth: 4,
            },
            _ => Scheme::SimpleStride { degree: 1 },
        };
        check(random_workload(&ops, 48, 4), scheme, false, case % 3 == 0);
    }
}

/// The same property with a tiny finite SLC (replacements and
/// writebacks racing against fetches and upgrades), 24 seeded cases,
/// with instrumented-on coverage interleaved.
#[test]
fn stress_finite_slc() {
    let mut rng = SplitMix64::seed_from_u64(0x57e52);
    for case in 0..24 {
        let ops = random_ops(&mut rng);
        let scheme = match rng.random_range(0u8..6) {
            0 => Scheme::None,
            1 => Scheme::Sequential { degree: 4 },
            2 => Scheme::IDetection { degree: 2 },
            3 => Scheme::DDetection { degree: 1 },
            4 => Scheme::DDetectionAdaptive {
                degree: 2,
                max_depth: 8,
            },
            _ => Scheme::AdaptiveSequential {
                initial_degree: 2,
                max_degree: 8,
            },
        };
        check(random_workload(&ops, 96, 4), scheme, true, case % 3 == 1);
    }
}

/// A directed worst case: every CPU hammers the same single block with
/// reads and writes, no synchronization — ownership migrates constantly.
#[test]
fn single_block_hammer() {
    let mut traces = Vec::new();
    for cpu in 0..16usize {
        let mut t = Vec::new();
        for k in 0..200u32 {
            let addr = Addr::new(16 * 4096);
            let pc = Pc::new(0x500);
            if (k as usize + cpu).is_multiple_of(3) {
                t.push(Op::Write { addr, pc });
            } else {
                t.push(Op::Read { addr, pc });
            }
            t.push(Op::Compute {
                cycles: 1 + (cpu as u32 % 5),
            });
        }
        traces.push(t);
    }
    let mut sys = System::new(
        SystemConfig::paper_baseline(),
        TraceWorkload::new("hammer", traces),
    );
    let r = sys.run();
    sys.audit_coherence();
    // The block bounces: lots of invalidations and owner-supplied fills.
    assert!(r.total(|n| n.invals_received) > 100);
    assert!(r.dir.owner_supplied > 100);
}

/// Writebacks racing with fetches: two CPUs alternately write a region
/// that thrashes a tiny SLC while a third reads it.
#[test]
fn writeback_fetch_races() {
    let mut traces = vec![Vec::new(); 16];
    let base = 16 * 4096u64;
    // CPUs 0 and 1 write 128 blocks (conflict-evicting in a 1 KB SLC =
    // 32 blocks), CPU 2 chases them with reads.
    for k in 0..128u64 {
        for trace in traces.iter_mut().take(2) {
            trace.push(Op::Write {
                addr: Addr::new(base + k * 32),
                pc: Pc::new(0x600),
            });
        }
        traces[2].push(Op::Read {
            addr: Addr::new(base + k * 32),
            pc: Pc::new(0x604),
        });
    }
    let mut sys = System::new(
        SystemConfig::paper_baseline().with_finite_slc(1024),
        TraceWorkload::new("wb-race", traces),
    );
    let r = sys.run();
    sys.audit_coherence();
    assert!(r.total(|n| n.writebacks) > 50, "no churn: {:?}", r.dir);
    assert_eq!(r.dir.stale_writebacks, 0);
}
