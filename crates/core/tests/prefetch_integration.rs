//! System-level behaviour of the prefetching machinery: the tagged-bit
//! lifecycle, candidate filtering (present / in-flight / SLWB-full /
//! page-bounded), usefulness accounting, and interaction with coherence.

use pfsim::{System, SystemConfig};
use pfsim_mem::{Addr, Pc};
use pfsim_prefetch::Scheme;
use pfsim_workloads::{micro, Op, TraceWorkload};

fn solo(ops: Vec<Op>) -> TraceWorkload {
    let mut traces = vec![Vec::new(); 16];
    traces[0] = ops;
    TraceWorkload::new("solo", traces)
}

fn read_at(addr: u64) -> Op {
    Op::Read {
        addr: Addr::new(addr),
        pc: Pc::new(0x400),
    }
}

const P: u64 = 16 * 4096; // page 16, homed on node 0

/// A prefetched block consumed by a demand read counts useful exactly
/// once; re-reading it later adds nothing.
#[test]
fn tagged_hit_counts_useful_once() {
    let ops = vec![
        read_at(P), // miss, prefetches P+32
        Op::Compute { cycles: 200 },
        read_at(P + 32), // tagged hit: useful, prefetches P+64
        Op::Compute { cycles: 200 },
        read_at(P + 32),            // FLC hit: invisible to the SLC
        read_at(P + 16 * 4096 * 4), // conflict-evict P+32 from the FLC
        read_at(P + 32),            // SLC hit, tag already cleared: not useful again
    ];
    let r = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
        solo(ops),
    )
    .run();
    let n = &r.nodes[0];
    assert_eq!(n.tagged_hits, 1);
    // Useful = the tagged hit (P+32). P+64's prefetch goes unused.
    assert_eq!(n.prefetches_useful, 1);
    assert!(n.prefetches_issued >= 2);
}

/// Candidates already present in the SLC are dropped, not re-requested.
#[test]
fn present_candidates_are_dropped() {
    let ops = vec![
        read_at(P + 32), // bring P+32 in as a demand block
        Op::Compute { cycles: 100 },
        read_at(P), // miss: candidate P+32 is already present
        Op::Compute { cycles: 100 },
    ];
    let r = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
        solo(ops),
    )
    .run();
    let n = &r.nodes[0];
    assert!(n.pf_dropped_present >= 1, "{n:?}");
}

/// When the SLWB is full, prefetch candidates are dropped silently (the
/// paper: "a prefetch request is never issued"), and demand traffic still
/// completes.
#[test]
fn slwb_full_drops_prefetches() {
    let mut cfg = SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 8 });
    cfg.slwb_entries = 2;
    // A burst of strided reads across pages generates more candidates
    // than two MSHRs can hold.
    let ops: Vec<Op> = (0..64).map(|k| read_at(P + k * 32)).collect();
    let r = System::new(cfg, solo(ops)).run();
    let n = &r.nodes[0];
    assert!(n.pf_dropped_full > 0, "{n:?}");
    assert_eq!(n.reads, 64);
}

/// No prefetch request ever crosses a page boundary, end to end: with
/// one-page streams, the prefetcher's last in-page candidate is the final
/// block, and the block after the page is never transacted.
#[test]
fn prefetches_never_cross_pages() {
    // Walk exactly one page (128 blocks); the next page is never touched.
    let wl = micro::sequential_walk(16, 128, 1);
    let r = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 4 }),
        wl,
    )
    .run();
    // Each CPU's region is one page: every issued prefetch lands in it,
    // so useful+unused = issued and *misses + prefetches ≤ 128 blocks*.
    for (i, n) in r.nodes.iter().enumerate() {
        assert!(
            n.read_misses + n.prefetches_issued <= 128,
            "node {i} transacted beyond its page: {n:?}"
        );
    }
}

/// A prefetched block invalidated before use is a useless prefetch, and
/// the demand re-read is a coherence miss — prefetching cannot mask true
/// sharing.
#[test]
fn invalidated_prefetches_are_useless() {
    let mut traces = vec![Vec::new(); 16];
    // CPU 0: miss on P (prefetching P+32), then wait, then read P+32.
    traces[0] = vec![
        read_at(P),
        Op::Barrier { id: 0 },
        Op::Barrier { id: 1 },
        read_at(P + 32),
    ];
    // CPU 1 writes P+32 between the barriers, invalidating the prefetch.
    traces[1] = vec![
        Op::Barrier { id: 0 },
        Op::Write {
            addr: Addr::new(P + 32),
            pc: Pc::new(0x500),
        },
        Op::Barrier { id: 1 },
    ];
    for t in traces.iter_mut().skip(2) {
        t.push(Op::Barrier { id: 0 });
        t.push(Op::Barrier { id: 1 });
    }
    let mut sys = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
        TraceWorkload::new("inval-pf", traces),
    );
    let r = sys.run();
    sys.audit_coherence();
    let n = &r.nodes[0];
    // The prefetch of P+32 was consumed by nobody: CPU 0's later read is
    // a fresh miss (coherence), not a tagged hit.
    assert_eq!(n.tagged_hits, 0, "{n:?}");
    assert_eq!(n.prefetches_useful, 0);
    assert_eq!(n.read_misses, 2);
    assert_eq!(n.coherence_misses, 1);
}

/// A demand read to a block whose prefetch is in flight (or just landed)
/// is never a miss: it merges (delayed hit) or hits tagged, and either
/// way the prefetch counts useful and the stall is below two full misses.
#[test]
fn second_block_is_covered_not_missed() {
    // Back-to-back reads: the second block is covered by the first's
    // prefetch, whether it has landed yet or not.
    let ops = vec![read_at(P), read_at(P + 32)];
    let r = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
        solo(ops),
    )
    .run();
    let n = &r.nodes[0];
    assert_eq!(n.read_misses, 1);
    assert_eq!(n.delayed_hits + n.tagged_hits, 1, "{n:?}");
    assert_eq!(n.prefetches_useful, 1);
    // And the covered reference stalls less than a full miss would have.
    assert!(n.read_stall < 2 * 27, "{}", n.read_stall);
}

/// The baseline issues no prefetch traffic at all.
#[test]
fn baseline_is_prefetch_free() {
    let r = System::new(
        SystemConfig::paper_baseline(),
        micro::sequential_walk(16, 64, 1),
    )
    .run();
    assert_eq!(r.total(|n| n.prefetches_issued), 0);
    assert_eq!(r.total(|n| n.tagged_hits), 0);
    assert_eq!(r.total(|n| n.pf_dropped_present), 0);
}

/// Degree scaling: more aggressive sequential prefetching issues more
/// requests but cannot exceed the stream's block count on a pure walk.
#[test]
fn degree_scaling_is_bounded_by_the_stream() {
    for d in [1u32, 2, 4, 8] {
        let r = System::new(
            SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: d }),
            micro::sequential_walk(16, 128, 1),
        )
        .run();
        for (i, n) in r.nodes.iter().enumerate() {
            assert!(
                n.prefetches_issued <= 127,
                "d={d} node {i}: {} prefetches for a 128-block page walk",
                n.prefetches_issued
            );
        }
    }
}
