//! End-to-end tests of the full-system simulator: latency calibration
//! against Table 1, coherence correctness, prefetching behaviour and
//! determinism.

use pfsim::{MissCause, RecordMisses, System, SystemConfig};
use pfsim_mem::{Addr, Pc};
use pfsim_prefetch::Scheme;
use pfsim_workloads::{micro, Op, TraceWorkload};

/// A 16-CPU trace where only CPU 0 executes `ops`.
fn solo(ops: Vec<Op>) -> TraceWorkload {
    let mut traces = vec![Vec::new(); 16];
    traces[0] = ops;
    TraceWorkload::new("solo", traces)
}

fn read(addr: u64) -> Op {
    Op::Read {
        addr: Addr::new(addr),
        pc: Pc::new(0x400),
    }
}

/// Page 16 is homed on node 0 (round-robin placement).
const LOCAL_PAGE: u64 = 16 * 4096;
/// Page 17 is homed on node 1.
const REMOTE_PAGE: u64 = 17 * 4096;

#[test]
fn local_memory_read_takes_28_pclocks() {
    // Table 1: "Read from local memory: 28 pclocks".
    let mut sys = System::new(SystemConfig::paper_baseline(), solo(vec![read(LOCAL_PAGE)]));
    let r = sys.run();
    assert_eq!(r.nodes[0].read_misses, 1);
    // Stall = latency minus the 1-pclock pipelined FLC access.
    assert_eq!(r.nodes[0].read_stall, 27);
    assert_eq!(r.exec_cycles, 28);
}

#[test]
fn slc_hit_takes_6_pclocks() {
    // Table 1: "Read from SLC: 6 pclocks". Block A and block A+128 map to
    // the same FLC line, so the third read misses the FLC but hits the
    // SLC.
    let a = LOCAL_PAGE;
    // 16 pages later: the same FLC set (4096 % 128 == 2048 % 128) and the
    // same home node (32 % 16 == 0), so both misses are local.
    let conflicting = LOCAL_PAGE + 16 * 4096;
    let mut sys = System::new(
        SystemConfig::paper_baseline(),
        solo(vec![read(a), read(conflicting), read(a)]),
    );
    let r = sys.run();
    assert_eq!(r.nodes[0].read_misses, 2);
    assert_eq!(r.nodes[0].slc_read_hits, 1);
    // Two memory reads stall 27 each; the SLC hit stalls 6 - 1 = 5.
    assert_eq!(r.nodes[0].read_stall, 27 + 27 + 5);
}

#[test]
fn remote_clean_read_adds_two_traversals() {
    // Home of the page is node 1, one hop from node 0: the request
    // (2 flits) takes 3+2 = 5 pclocks, the data reply (10 flits) takes
    // 3+10 = 13, so the miss costs 28 + 18 = 46.
    let mut sys = System::new(
        SystemConfig::paper_baseline(),
        solo(vec![read(REMOTE_PAGE)]),
    );
    let r = sys.run();
    assert_eq!(r.nodes[0].read_misses, 1);
    assert_eq!(r.nodes[0].read_stall, 45);
    assert_eq!(r.net.messages, 2);
}

#[test]
fn dirty_remote_read_takes_four_traversals() {
    // CPU 2 writes a block homed on node 1; CPU 0 then reads it: the home
    // must fetch the dirty copy from node 2 before replying.
    let mut traces = vec![Vec::new(); 16];
    traces[2] = vec![
        Op::Write {
            addr: Addr::new(REMOTE_PAGE),
            pc: Pc::new(0x500),
        },
        Op::Barrier { id: 0 },
    ];
    traces[0] = vec![Op::Barrier { id: 0 }, read(REMOTE_PAGE)];
    for (i, t) in traces.iter_mut().enumerate() {
        if i != 0 && i != 2 {
            *t = vec![Op::Barrier { id: 0 }];
        }
    }
    let mut sys = System::new(
        SystemConfig::paper_baseline(),
        TraceWorkload::new("w", traces),
    );
    let r = sys.run();
    assert_eq!(r.nodes[0].read_misses, 1);
    // Four traversals: strictly slower than the two-traversal clean case.
    assert!(
        r.nodes[0].read_stall > 46,
        "stall {} should exceed the 2-traversal latency",
        r.nodes[0].read_stall
    );
    sys.audit_coherence();
}

#[test]
fn producer_consumer_misses_are_coherence_classified() {
    let mut sys = System::new(
        SystemConfig::paper_baseline().with_recording(RecordMisses::All),
        micro::producer_consumer(16, 64),
    );
    let r = sys.run();
    // Every consumer misses all 64 blocks.
    for cpu in 1..16 {
        assert_eq!(
            r.nodes[cpu].read_misses, 64,
            "cpu {cpu}: {:?}",
            r.nodes[cpu]
        );
        // The consumers never touched the blocks before: cold misses.
        assert_eq!(r.nodes[cpu].cold_misses, 64);
    }
    sys.audit_coherence();
}

#[test]
fn broadcast_then_invalidate_produces_coherence_misses() {
    let mut sys = System::new(
        SystemConfig::paper_baseline(),
        micro::broadcast_then_invalidate(16, 32),
    );
    let r = sys.run();
    // The rewrite by CPU 0 invalidates all 15 other readers...
    assert!(r.total(|n| n.invals_received) >= 15 * 32);
    // ...whose re-reads are coherence misses.
    for cpu in 1..16 {
        assert_eq!(r.nodes[cpu].coherence_misses, 32, "cpu {cpu}");
    }
    sys.audit_coherence();
}

#[test]
fn lock_ping_pong_serializes_critical_sections() {
    let mut sys = System::new(
        SystemConfig::paper_baseline(),
        micro::lock_ping_pong(16, 50),
    );
    let r = sys.run();
    // Both CPUs finish, and contention shows up as sync stall.
    assert!(r.nodes[0].sync_stall > 0);
    assert!(r.nodes[1].sync_stall > 0);
    // The counter block ping-pongs: each acquire-side read misses.
    assert!(r.nodes[1].coherence_misses > 25);
    sys.audit_coherence();
}

#[test]
fn sequential_prefetching_removes_sequential_misses() {
    let base = System::new(
        SystemConfig::paper_baseline(),
        micro::sequential_walk(16, 128, 1),
    )
    .run();
    let seq = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
        micro::sequential_walk(16, 128, 1),
    )
    .run();
    // The walk covers 128 blocks x 16 cpus (one page each); with d=1
    // sequential prefetching only the first miss per page remains a full
    // miss (later references at worst merge into the in-flight prefetch).
    assert_eq!(base.read_misses(), 128 * 16);
    assert!(
        seq.read_misses() <= 2 * 16,
        "sequential prefetching left {} misses",
        seq.read_misses()
    );
    // Every issued prefetch is eventually consumed.
    assert!(seq.prefetch_efficiency() > 0.95);
    // Stall time improves even where misses became delayed hits.
    assert!(seq.read_stall() < base.read_stall());
}

#[test]
fn idetection_covers_large_strides() {
    // Stride of 3 blocks: sequential prefetching cannot cover it, but
    // I-detection can.
    let wl = || micro::stride_stream(16, 96, 128, 1);
    let base = System::new(SystemConfig::paper_baseline(), wl()).run();
    let idet = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::IDetection { degree: 1 }),
        wl(),
    )
    .run();
    let seq = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
        wl(),
    )
    .run();
    let b_miss = base.read_misses();
    let i_miss = idet.read_misses();
    let s_miss = seq.read_misses();
    // I-detection removes almost all full misses. With degree 1 and a
    // tight consumer loop many demands merge into the still-in-flight
    // prefetch (delayed hits) — the latency is then mostly overlapped, so
    // the stall time drops sharply too.
    assert!(i_miss < b_miss / 10, "I-det left {i_miss} of {b_miss}");
    assert!(
        idet.read_stall() < base.read_stall() * 3 / 5,
        "I-det stall {} of {}",
        idet.read_stall(),
        base.read_stall()
    );
    // Sequential prefetching is useless here and removes nothing.
    assert!(s_miss > b_miss * 9 / 10, "Seq removed too much: {s_miss}");
    assert!(idet.prefetch_efficiency() > 0.9);
    assert!(seq.prefetch_efficiency() < 0.1);
}

#[test]
fn ddetection_covers_strides_without_pcs() {
    let wl = || micro::stride_stream(16, 96, 128, 1);
    let base = System::new(SystemConfig::paper_baseline(), wl()).run();
    let ddet = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::DDetection { degree: 1 }),
        wl(),
    )
    .run();
    assert!(
        ddet.read_misses() < base.read_misses() * 2 / 3,
        "D-det left {} of {}",
        ddet.read_misses(),
        base.read_misses()
    );
}

#[test]
fn random_access_defeats_all_prefetchers() {
    // A large private region (8192 blocks) keeps accidental
    // next-block coverage negligible.
    let wl = || micro::random_access(16, 8192, 400);
    let base = System::new(SystemConfig::paper_baseline(), wl()).run();
    for scheme in [
        Scheme::Sequential { degree: 1 },
        Scheme::IDetection { degree: 1 },
        Scheme::DDetection { degree: 1 },
    ] {
        let r = System::new(SystemConfig::paper_baseline().with_scheme(scheme), wl()).run();
        // Miss counts barely move...
        assert!(
            r.read_misses() > base.read_misses() * 8 / 10,
            "{scheme}: {} vs {}",
            r.read_misses(),
            base.read_misses()
        );
    }
    // ...and sequential prefetching wastes bandwidth doing it.
    let seq = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
        wl(),
    )
    .run();
    assert!(seq.prefetch_efficiency() < 0.5);
    assert!(seq.net.flits > base.net.flits);
}

#[test]
fn finite_slc_produces_replacement_misses() {
    // Each CPU walks 4096 blocks twice: an infinite SLC absorbs the second
    // pass, a 16 KB SLC (512 blocks) thrashes.
    let infinite = System::new(
        SystemConfig::paper_baseline(),
        micro::sequential_walk(16, 4096, 2),
    )
    .run();
    let finite = System::new(
        SystemConfig::paper_baseline().with_finite_slc(16 * 1024),
        micro::sequential_walk(16, 4096, 2),
    )
    .run();
    assert_eq!(infinite.total(|n| n.replacement_misses), 0);
    assert!(finite.total(|n| n.replacement_misses) >= 16 * 4096);
    assert!(finite.read_misses() > infinite.read_misses());
}

#[test]
fn miss_recording_captures_pc_and_cause() {
    let mut sys = System::new(
        SystemConfig::paper_baseline().with_recording(RecordMisses::Cpu(0)),
        micro::sequential_walk(16, 32, 1),
    );
    let r = sys.run();
    assert_eq!(r.miss_traces[0].len(), 32);
    assert!(r.miss_traces[1].is_empty());
    for rec in &r.miss_traces[0] {
        assert_eq!(rec.cause, MissCause::Cold);
    }
    // Consecutive recorded misses walk consecutive blocks.
    for w in r.miss_traces[0].windows(2) {
        assert_eq!(w[1].block.as_u64() - w[0].block.as_u64(), 1);
    }
}

#[test]
fn barriers_release_everyone() {
    let wl = micro::producer_consumer(16, 8);
    let mut sys = System::new(SystemConfig::paper_baseline(), wl);
    let r = sys.run();
    // All CPUs crossed the barrier (nonzero barrier stall for latecomers,
    // and the run terminated at all).
    assert!(r.total(|n| n.barrier_stall) > 0);
}

#[test]
fn deterministic_replay() {
    let run = || {
        System::new(
            SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 2 }),
            micro::producer_consumer(16, 64),
        )
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.nodes, b.nodes);
    assert_eq!(a.net, b.net);
}

#[test]
fn interleaved_streams_fit_in_the_rpt() {
    // 8 interleaved streams from distinct pcs: the 256-entry RPT tracks
    // them all.
    let mut traces = vec![Vec::new(); 16];
    let wl1 = micro::interleaved_streams(8, 96, 64);
    traces[0] = wl1.trace(0).to_vec();
    let base = System::new(
        SystemConfig::paper_baseline(),
        TraceWorkload::new("w", traces.clone()),
    )
    .run();
    let idet = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::IDetection { degree: 1 }),
        TraceWorkload::new("w", traces),
    )
    .run();
    let covered = |r: &pfsim::SimResult| r.read_misses() + r.total(|n| n.delayed_hits);
    assert!(
        covered(&idet) < covered(&base) / 2,
        "{} vs {}",
        covered(&idet),
        covered(&base)
    );
}

#[test]
fn set_associativity_absorbs_conflict_misses() {
    // A pathological conflict pattern: each CPU alternates between blocks
    // that map to the same direct-mapped set (16 KB SLC = 512 sets: blocks
    // b and b+512 conflict). 4-way associativity absorbs it entirely.
    let mut traces = vec![Vec::new(); 16];
    for (cpu, trace) in traces.iter_mut().enumerate() {
        let base = (16 + cpu as u64) * 4096 * 8; // distinct pages per cpu
        for _round in 0..20 {
            for way in 0..4u64 {
                trace.push(Op::Read {
                    addr: Addr::new(base + way * 512 * 32),
                    pc: Pc::new(0x700 + way as u32 * 4),
                });
            }
        }
    }
    let wl = || TraceWorkload::new("conflict", traces.clone());
    let dm = System::new(
        SystemConfig::paper_baseline().with_finite_slc(16 * 1024),
        wl(),
    )
    .run();
    let sa = {
        let mut cfg = SystemConfig::paper_baseline();
        cfg = cfg.with_set_assoc_slc(16 * 1024, 4);
        System::new(cfg, wl()).run()
    };
    // Direct-mapped: the four blocks fight over one set, every access
    // replaces; 4-way LRU: after the first round everything hits.
    assert!(
        dm.total(|n| n.replacement_misses) > 16 * 40,
        "direct-mapped absorbed the conflicts: {}",
        dm.total(|n| n.replacement_misses)
    );
    assert_eq!(sa.total(|n| n.replacement_misses), 0, "{:?}", sa.nodes[0]);
    assert!(sa.read_misses() < dm.read_misses() / 5);
}
