//! A minimal JSON value type with a renderer and a parser.
//!
//! Run manifests must round-trip exactly: pclock totals are `u64`s that
//! a float-only JSON layer would corrupt past 2^53. [`Json`] therefore
//! keeps integers ([`Json::Int`]) and floats ([`Json::Float`]) apart —
//! the parser yields `Int` for any integral literal that fits `i64`,
//! and the renderer never converts between them. Objects preserve
//! insertion order (manifests diff cleanly), and the renderer puts
//! *leaf* containers (no nested arrays/objects) on one line so a
//! 16-node stats array stays readable without exploding line count.
//!
//! # Examples
//!
//! ```
//! use pfsim_analysis::json::Json;
//!
//! let v = Json::Object(vec![
//!     ("pclocks".to_string(), Json::Int(14_059_066)),
//!     ("apps".to_string(), Json::Array(vec![Json::Str("LU".into())])),
//! ]);
//! let text = v.render();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("pclocks").unwrap().as_u64(), Some(14_059_066));
//! ```

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number (kept exact; never rendered with a decimal
    /// point).
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object member list.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an unsigned integer.
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `i64::MAX` (no simulator counter does).
    pub fn uint(v: u64) -> Json {
        Json::Int(i64::try_from(v).expect("counter exceeds i64::MAX"))
    }

    /// Member `key` of an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen), if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Whether this value contains no nested containers (renders on one
    /// line).
    fn is_leaf(&self) -> bool {
        match self {
            Json::Array(items) => !items
                .iter()
                .any(|v| matches!(v, Json::Array(_) | Json::Object(_))),
            Json::Object(members) => !members
                .iter()
                .any(|(_, v)| matches!(v, Json::Array(_) | Json::Object(_))),
            _ => true,
        }
    }

    /// Renders the value as indented JSON text (trailing newline
    /// included at the top level).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                    // `{}` omits ".0" for integral floats; keep the type
                    // distinction visible so the parser round-trips it as
                    // a float.
                    if v.fract() == 0.0 && !out.ends_with(['.', 'e']) {
                        let _ = write!(out, ".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                } else if self.is_leaf() {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.render_into(out, depth + 1);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        v.render_into(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                } else if self.is_leaf() {
                    out.push('{');
                    for (i, (k, v)) in members.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        render_string(k, out);
                        out.push_str(": ");
                        v.render_into(out, depth + 1);
                    }
                    out.push('}');
                } else {
                    out.push_str("{\n");
                    for (i, (k, v)) in members.iter().enumerate() {
                        indent(out, depth + 1);
                        render_string(k, out);
                        out.push_str(": ");
                        v.render_into(out, depth + 1);
                        if i + 1 < members.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push('}');
                }
            }
        }
    }

    /// Parses JSON text.
    ///
    /// Accepts the full JSON grammar; integral numbers without
    /// fraction/exponent that fit `i64` become [`Json::Int`], everything
    /// else numeric becomes [`Json::Float`].
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not produced by our renderer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always on a boundary).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|e| format!("invalid number '{text}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Float(0.5),
            Json::Float(-1234.75),
            Json::Str("hello \"world\"\n\t\\".to_string()),
            Json::Str("π ≈ 3".to_string()),
        ] {
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{v:?}");
        }
    }

    #[test]
    fn large_u64_counters_survive() {
        let v = Json::uint(14_059_066);
        assert_eq!(Json::parse(&v.render()).unwrap().as_u64(), Some(14_059_066));
        let big = Json::uint(9_007_199_254_740_993); // 2^53 + 1
        assert_eq!(
            Json::parse(&big.render()).unwrap().as_u64(),
            Some(9_007_199_254_740_993)
        );
    }

    #[test]
    fn containers_round_trip_preserving_order() {
        let v = Json::obj(vec![
            ("zeta", Json::Int(1)),
            ("alpha", Json::Array(vec![Json::Int(1), Json::Null])),
            (
                "nested",
                Json::obj(vec![("x", Json::Float(1.5)), ("y", Json::str("s"))]),
            ),
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
        ]);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
        let keys: Vec<&str> = back
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["zeta", "alpha", "nested", "empty_arr", "empty_obj"]);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Json::Float(3.0);
        let text = v.render();
        assert!(text.contains("3.0"), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn leaf_objects_render_on_one_line() {
        let v = Json::Array(vec![
            Json::obj(vec![("a", Json::Int(1)), ("b", Json::Int(2))]),
            Json::obj(vec![("a", Json::Int(3)), ("b", Json::Int(4))]),
        ]);
        let text = v.render();
        assert!(text.contains("{\"a\": 1, \"b\": 2}"), "{text}");
    }

    #[test]
    fn parses_foreign_json() {
        let v =
            Json::parse(r#" { "a" : [ 1 , 2.5e1 , -3 ] , "b" : { } , "c" : "A\ud800" } "#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(25.0)
        );
        assert_eq!(v.get("c").unwrap().as_str(), Some("A\u{fffd}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn accessors_discriminate() {
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::Int(-1).as_i64(), Some(-1));
        assert_eq!(Json::Float(1.5).as_u64(), None);
        assert_eq!(Json::Int(2).as_f64(), Some(2.0));
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Null.get("x"), None);
    }
}
