//! The §5.1 stride-sequence classifier.

use std::borrow::Borrow;
use std::collections::BTreeMap;

use pfsim_mem::{BlockAddr, Pc};

/// One read miss as seen by the classifier: which load instruction missed
/// on which block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissEvent {
    /// Program counter of the missing load.
    pub pc: Pc,
    /// Block that missed.
    pub block: BlockAddr,
}

/// The paper requires "at least three equidistant accesses ... caused by
/// the same load instruction" before a run counts as a stride sequence.
const MIN_SEQUENCE: usize = 3;

/// Result of classifying one processor's miss stream.
#[derive(Debug, Clone, Default)]
pub struct Characterization {
    /// Total read misses examined.
    pub total_misses: u64,
    /// Misses belonging to stride sequences (runs of ≥ 3 equidistant
    /// misses from one load instruction).
    pub misses_in_sequences: u64,
    /// Number of maximal stride sequences found.
    pub sequences: u64,
    /// Sum of sequence lengths (equals `misses_in_sequences`; kept for
    /// clarity of the average computation).
    pub sequence_misses: u64,
    /// stride (in blocks) → misses inside sequences with that stride.
    /// Sorted by key: histogram iteration feeds the published tables, so
    /// its order must be deterministic (lint D003).
    pub stride_histogram: BTreeMap<i64, u64>,
    /// sequence length (in misses) → number of sequences of that length.
    pub length_histogram: BTreeMap<usize, u64>,
}

impl Characterization {
    /// Fraction of read misses inside stride sequences (Table 2, row 1).
    pub fn stride_fraction(&self) -> f64 {
        if self.total_misses == 0 {
            0.0
        } else {
            self.misses_in_sequences as f64 / self.total_misses as f64
        }
    }

    /// Average stride-sequence length in misses (Table 2, row 2).
    pub fn avg_sequence_length(&self) -> f64 {
        if self.sequences == 0 {
            0.0
        } else {
            self.sequence_misses as f64 / self.sequences as f64
        }
    }

    /// Strides sorted by how many sequence misses they account for, with
    /// each stride's share of all sequence misses (Table 2, row 3).
    pub fn dominant_strides(&self) -> Vec<(i64, f64)> {
        let total = self.misses_in_sequences.max(1) as f64;
        let mut strides: Vec<(i64, f64)> = self
            .stride_histogram
            .iter()
            .map(|(&s, &count)| (s, count as f64 / total))
            .collect();
        strides.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        strides
    }

    /// Median stride-sequence length in misses (0 when no sequences),
    /// a companion to [`avg_sequence_length`](Self::avg_sequence_length)
    /// that is robust to a few very long sweeps.
    pub fn median_sequence_length(&self) -> usize {
        if self.sequences == 0 {
            return 0;
        }
        let mut lengths: Vec<(usize, u64)> = self
            .length_histogram
            .iter()
            .map(|(&l, &c)| (l, c))
            .collect();
        lengths.sort_unstable();
        let mut remaining = self.sequences.div_ceil(2);
        for (len, count) in lengths {
            if remaining <= count {
                return len;
            }
            remaining -= count;
        }
        unreachable!("histogram counts sum to self.sequences")
    }

    /// The longest stride sequence observed, in misses.
    pub fn max_sequence_length(&self) -> usize {
        self.length_histogram.keys().copied().max().unwrap_or(0)
    }

    /// Renders the dominant strides like the paper's table cells, e.g.
    /// `"1(76%)"` or `"65(42%), 1(31%)"` (strides below 5% are elided).
    pub fn dominant_strides_label(&self) -> String {
        let strides = self.dominant_strides();
        let mut parts: Vec<String> = strides
            .iter()
            .filter(|(_, share)| *share >= 0.05)
            .take(3)
            .map(|(s, share)| format!("{s}({:.0}%)", share * 100.0))
            .collect();
        if parts.is_empty() {
            if let Some((s, share)) = strides.first() {
                parts.push(format!("{s}({:.0}%)", share * 100.0));
            } else {
                parts.push("-".to_string());
            }
        }
        parts.join(", ")
    }
}

/// Classifies a processor's read-miss stream per §5.1.
///
/// Misses are grouped by load instruction (preserving program order
/// within each group, as I-detection hardware would see them); a maximal
/// run of equidistant block numbers of length ≥ 3 is a stride sequence.
/// Absolute stride values are recorded (a descending sweep is the same
/// stride as an ascending one, as in the paper's Table 2).
///
/// Accepts any stream of (borrowed or owned) [`MissEvent`]s, so callers
/// can feed it a decode iterator over a packed trace's miss records
/// without materializing a slice first.
pub fn characterize<I>(misses: I) -> Characterization
where
    I: IntoIterator,
    I::Item: Borrow<MissEvent>,
{
    // Grouped per load instruction. A BTreeMap (not a hash map) so the
    // run-closing loop below visits groups in PC order: the sequence and
    // histogram totals are commutative, but `sequences` numbering and any
    // future per-group output stay deterministic by construction.
    let mut per_pc: BTreeMap<Pc, Vec<BlockAddr>> = BTreeMap::new();
    let mut total_misses = 0u64;
    for m in misses {
        let m = m.borrow();
        total_misses += 1;
        per_pc.entry(m.pc).or_default().push(m.block);
    }

    let mut ch = Characterization {
        total_misses,
        ..Default::default()
    };

    for blocks in per_pc.values() {
        let mut run_start = 0usize;
        let mut i = 1usize;
        // The first index of this group not yet counted toward
        // `misses_in_sequences`: the boundary miss shared between two
        // adjacent runs must be counted only once.
        let mut counted_until = 0usize;
        let mut close_run = |start: usize, end: usize, ch: &mut Characterization| {
            // Run of equidistant misses blocks[start..=end].
            let len = end - start + 1;
            if len >= MIN_SEQUENCE {
                let stride = blocks[start + 1].stride_from(blocks[start]).abs();
                let unique = (end + 1 - start.max(counted_until)) as u64;
                counted_until = end + 1;
                ch.misses_in_sequences += unique;
                ch.sequence_misses += len as u64;
                ch.sequences += 1;
                *ch.stride_histogram.entry(stride).or_insert(0) += unique;
                *ch.length_histogram.entry(len).or_insert(0) += 1;
            }
        };
        if blocks.len() == 1 {
            continue;
        }
        let mut delta = blocks[1].stride_from(blocks[0]);
        while i + 1 < blocks.len() {
            let next = blocks[i + 1].stride_from(blocks[i]);
            if next != delta || delta == 0 {
                close_run(run_start, i, &mut ch);
                run_start = i;
                delta = next;
            }
            i += 1;
        }
        close_run(run_start, i, &mut ch);
    }
    debug_assert!(ch.misses_in_sequences <= ch.total_misses);
    ch
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pc: u32, block: u64) -> MissEvent {
        MissEvent {
            pc: Pc::new(pc),
            block: BlockAddr::new(block),
        }
    }

    #[test]
    fn pure_stride_sequence_is_fully_classified() {
        let misses: Vec<_> = (0..10).map(|k| ev(1, 100 + 21 * k)).collect();
        let ch = characterize(&misses);
        assert_eq!(ch.total_misses, 10);
        assert_eq!(ch.misses_in_sequences, 10);
        assert_eq!(ch.sequences, 1);
        assert_eq!(ch.avg_sequence_length(), 10.0);
        assert_eq!(ch.dominant_strides(), vec![(21, 1.0)]);
    }

    #[test]
    fn two_misses_are_not_a_sequence() {
        let ch = characterize([ev(1, 10), ev(1, 11)]);
        assert_eq!(ch.misses_in_sequences, 0);
        assert_eq!(ch.stride_fraction(), 0.0);
    }

    #[test]
    fn three_equidistant_misses_are_the_minimum() {
        let ch = characterize([ev(1, 10), ev(1, 11), ev(1, 12)]);
        assert_eq!(ch.misses_in_sequences, 3);
        assert_eq!(ch.sequences, 1);
    }

    #[test]
    fn interleaved_pcs_classify_independently() {
        // Two interleaved sequences from distinct loads: both found.
        let mut misses = Vec::new();
        for k in 0..6 {
            misses.push(ev(1, 100 + k));
            misses.push(ev(2, 900 + 5 * k));
        }
        let ch = characterize(&misses);
        assert_eq!(ch.misses_in_sequences, 12);
        assert_eq!(ch.sequences, 2);
        let strides = ch.dominant_strides();
        assert_eq!(strides.len(), 2);
        assert!(strides.iter().any(|&(s, _)| s == 1));
        assert!(strides.iter().any(|&(s, _)| s == 5));
    }

    #[test]
    fn stride_change_splits_sequences() {
        // 4 misses at stride 1, then 4 at stride 3 (the boundary miss is
        // shared as the new run's start).
        let blocks = [10, 11, 12, 13, 16, 19, 22, 25];
        let misses: Vec<_> = blocks.iter().map(|&b| ev(1, b)).collect();
        let ch = characterize(&misses);
        assert_eq!(ch.sequences, 2);
        assert_eq!(ch.stride_histogram[&1], 4);
        // The boundary miss (13) belongs to both runs but counts once:
        // the second run contributes its remaining four misses.
        assert_eq!(ch.stride_histogram[&3], 4);
        assert_eq!(ch.misses_in_sequences, 8);
        assert!(ch.stride_fraction() <= 1.0);
    }

    #[test]
    fn random_misses_yield_no_sequences() {
        let blocks = [5u64, 900, 17, 4400, 23, 1000, 2, 77];
        let misses: Vec<_> = blocks.iter().map(|&b| ev(7, b)).collect();
        let ch = characterize(&misses);
        assert_eq!(ch.misses_in_sequences, 0);
        assert_eq!(ch.avg_sequence_length(), 0.0);
    }

    #[test]
    fn descending_strides_count_as_positive() {
        let misses: Vec<_> = (0..5).map(|k| ev(1, 1000 - 2 * k)).collect();
        let ch = characterize(&misses);
        assert_eq!(ch.dominant_strides()[0].0, 2);
    }

    #[test]
    fn zero_stride_runs_are_not_sequences() {
        // Repeated misses on the same block (ping-pong invalidation) are
        // not stride sequences.
        let misses: Vec<_> = (0..6).map(|_| ev(1, 42)).collect();
        let ch = characterize(&misses);
        assert_eq!(ch.misses_in_sequences, 0);
    }

    #[test]
    fn label_formats_like_the_paper() {
        let mut misses: Vec<_> = (0..76).map(|k| ev(1, 1000 + k)).collect();
        misses.extend((0..24).map(|k| ev(2, 90_000 + 21 * k)));
        let ch = characterize(&misses);
        assert_eq!(ch.dominant_strides_label(), "1(76%), 21(24%)");
    }

    #[test]
    fn empty_stream() {
        let ch = characterize([] as [MissEvent; 0]);
        assert_eq!(ch.total_misses, 0);
        assert_eq!(ch.stride_fraction(), 0.0);
        assert_eq!(ch.dominant_strides_label(), "-");
        assert_eq!(ch.median_sequence_length(), 0);
        assert_eq!(ch.max_sequence_length(), 0);
    }

    #[test]
    fn length_statistics() {
        // Three sequences: lengths 3, 3 and 10 (distinct pcs).
        let mut misses = Vec::new();
        misses.extend((0..3).map(|k| ev(1, 100 + k)));
        misses.extend((0..3).map(|k| ev(2, 900 + 2 * k)));
        misses.extend((0..10).map(|k| ev(3, 5000 + 7 * k)));
        let ch = characterize(&misses);
        assert_eq!(ch.sequences, 3);
        assert_eq!(ch.length_histogram[&3], 2);
        assert_eq!(ch.length_histogram[&10], 1);
        assert_eq!(ch.median_sequence_length(), 3);
        assert_eq!(ch.max_sequence_length(), 10);
        // Mean is pulled up by the long sweep; the median is not.
        assert!((ch.avg_sequence_length() - 16.0 / 3.0).abs() < 1e-9);
    }
}
