//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple monospace table builder used by every experiment binary to
/// print paper-style tables.
///
/// # Examples
///
/// ```
/// use pfsim_analysis::TextTable;
///
/// let mut t = TextTable::new(vec!["App".into(), "Misses".into()]);
/// t.row(vec!["LU".into(), "93%".into()]);
/// let s = t.render();
/// assert!(s.contains("LU"));
/// assert!(s.contains("Misses"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim the trailing pad of the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["A".into(), "Long header".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("A "));
        assert!(lines[2].starts_with("xxxxxx"));
        // The second column starts at the same offset in every line.
        let off = lines[0].find("Long").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), off);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["A".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = TextTable::new(vec!["A".into()]);
        assert!(t.is_empty());
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
    }
}
