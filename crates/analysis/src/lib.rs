//! Off-line analysis for the prefetching study: the §5.1 stride-sequence
//! characterization behind Tables 2–4, the relative metrics of Figure 6,
//! and plain-text table rendering shared by the experiment binaries.
//!
//! The characterization takes the read-miss stream of one processor
//! (recorded by the simulator on a baseline run) and measures the three
//! "key application parameters" the paper uses to predict prefetching
//! effectiveness:
//!
//! 1. the fraction of read misses that belong to stride sequences,
//! 2. the average length of those sequences, and
//! 3. the strides themselves (dominant stride in blocks).
//!
//! # Examples
//!
//! ```
//! use pfsim_analysis::{characterize, MissEvent};
//! use pfsim_mem::{BlockAddr, Pc};
//!
//! // A stride-2 sequence of five misses from one load instruction.
//! let misses: Vec<MissEvent> = (0..5)
//!     .map(|k| MissEvent { pc: Pc::new(0x40), block: BlockAddr::new(100 + 2 * k) })
//!     .collect();
//! let ch = characterize(&misses);
//! assert_eq!(ch.total_misses, 5);
//! assert_eq!(ch.misses_in_sequences, 5);
//! assert_eq!(ch.dominant_strides()[0].0, 2);
//! ```

#![warn(missing_docs)]

pub mod json;
mod metrics;
mod stride;
mod table;

pub use json::Json;
pub use metrics::{compare, RunMetrics, SchemeComparison};
pub use stride::{characterize, Characterization, MissEvent};
pub use table::TextTable;
