//! The relative metrics of Figure 6.

/// Aggregate numbers from one simulation run, in scheme-agnostic form.
///
/// The experiment drivers convert the simulator's result structure into
/// this and feed pairs of runs to [`compare`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Demand read misses.
    pub read_misses: u64,
    /// Read stall cycles.
    pub read_stall: u64,
    /// Prefetches issued.
    pub prefetches_issued: u64,
    /// Prefetches consumed by demand references.
    pub prefetches_useful: u64,
    /// Network flits injected (traffic).
    pub flits: u64,
    /// Execution time in pclocks.
    pub exec_cycles: u64,
}

/// One scheme's Figure-6 numbers relative to the baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeComparison {
    /// Read misses relative to baseline (Figure 6, top).
    pub relative_misses: f64,
    /// Prefetch efficiency: useful / issued (Figure 6, middle).
    pub efficiency: f64,
    /// Read stall time relative to baseline (Figure 6, bottom).
    pub relative_stall: f64,
    /// Network traffic (flits) relative to baseline.
    pub relative_traffic: f64,
    /// Execution time relative to baseline.
    pub relative_exec: f64,
}

/// Computes one scheme's bars of Figure 6 against the baseline.
///
/// # Examples
///
/// ```
/// use pfsim_analysis::{compare, RunMetrics};
///
/// let base = RunMetrics {
///     read_misses: 100, read_stall: 1000, prefetches_issued: 0,
///     prefetches_useful: 0, flits: 500, exec_cycles: 10_000,
/// };
/// let seq = RunMetrics {
///     read_misses: 72, read_stall: 820, prefetches_issued: 90,
///     prefetches_useful: 40, flits: 800, exec_cycles: 9_500,
/// };
/// let c = compare(&base, &seq);
/// assert!((c.relative_misses - 0.72).abs() < 1e-9);
/// assert!((c.efficiency - 40.0 / 90.0).abs() < 1e-9);
/// ```
pub fn compare(baseline: &RunMetrics, scheme: &RunMetrics) -> SchemeComparison {
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            if num == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            num as f64 / den as f64
        }
    };
    SchemeComparison {
        relative_misses: ratio(scheme.read_misses, baseline.read_misses),
        efficiency: if scheme.prefetches_issued == 0 {
            1.0
        } else {
            scheme.prefetches_useful as f64 / scheme.prefetches_issued as f64
        },
        relative_stall: ratio(scheme.read_stall, baseline.read_stall),
        relative_traffic: ratio(scheme.flits, baseline.flits),
        relative_exec: ratio(scheme.exec_cycles, baseline.exec_cycles),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(misses: u64, stall: u64) -> RunMetrics {
        RunMetrics {
            read_misses: misses,
            read_stall: stall,
            prefetches_issued: 0,
            prefetches_useful: 0,
            flits: 100,
            exec_cycles: 100,
        }
    }

    #[test]
    fn baseline_compares_to_itself_as_unity() {
        let b = metrics(50, 500);
        let c = compare(&b, &b);
        assert_eq!(c.relative_misses, 1.0);
        assert_eq!(c.relative_stall, 1.0);
        assert_eq!(c.efficiency, 1.0);
        assert_eq!(c.relative_traffic, 1.0);
    }

    #[test]
    fn zero_denominators_are_handled() {
        let b = metrics(0, 0);
        let s = metrics(0, 0);
        let c = compare(&b, &s);
        assert_eq!(c.relative_misses, 1.0);
        let s2 = metrics(5, 5);
        let c2 = compare(&b, &s2);
        assert!(c2.relative_misses.is_infinite());
    }
}
