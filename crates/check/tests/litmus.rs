//! Table-driven litmus suite: the classic shared-memory shapes, each run
//! under every prefetching scheme on both the paper baseline and a tiny
//! finite SLC, with the consistency oracle judging every load.
//!
//! These are *positive* tests: the simulator's protocol is believed
//! correct, so each litmus workload must complete with zero violations.
//! (The oracle's sensitivity to actual bugs is validated separately by
//! fault injection in `mutation.rs`.) The shapes are chosen so that the
//! interesting behaviors — same-location coherence, message passing
//! through a lock, store buffering that release consistency permits,
//! barrier-ordered publication — all appear with prefetchers pulling
//! blocks around underneath them.

use pfsim::SystemConfig;
use pfsim_check::{run_checked, run_checked_threads, CheckReport};
use pfsim_mem::{Addr, Pc, SplitMix64};
use pfsim_prefetch::Scheme;
use pfsim_workloads::fuzz::{random_ops, random_workload};
use pfsim_workloads::{Op, TraceWorkload};

const CPUS: usize = 16;
const FINAL_BARRIER: u32 = 999;

/// Shared block on page 16 (home node 0).
fn x() -> Addr {
    Addr::new(16 * 4096)
}
/// A second shared location in a different block.
fn y() -> Addr {
    Addr::new(16 * 4096 + 64)
}
/// The lock all lock-based shapes contend on.
fn lk() -> Addr {
    Addr::new(64 * 4096)
}

fn r(addr: Addr) -> Op {
    Op::Read {
        addr,
        pc: Pc::new(0x400),
    }
}
fn w(addr: Addr) -> Op {
    Op::Write {
        addr,
        pc: Pc::new(0x404),
    }
}
fn acq(lock: Addr) -> Op {
    Op::Acquire { lock }
}
fn rel(lock: Addr) -> Op {
    Op::Release { lock }
}

/// Builds a 16-lane workload from sparse per-cpu op lists; every lane
/// (busy or idle) joins the final barrier so the run ends synchronized.
fn litmus(name: &str, lanes: &[(usize, &[Op])]) -> TraceWorkload {
    let mut traces = vec![Vec::new(); CPUS];
    for &(cpu, ops) in lanes {
        traces[cpu] = ops.to_vec();
    }
    for t in &mut traces {
        t.push(Op::Barrier { id: FINAL_BARRIER });
    }
    TraceWorkload::new(name, traces)
}

/// The litmus table. Each entry builds its workload fresh per config.
fn shapes() -> Vec<(&'static str, TraceWorkload)> {
    // Barrier-ordering needs every lane at the intermediate barrier too.
    let mut barrier_lanes: Vec<(usize, Vec<Op>)> = (0..CPUS)
        .map(|c| (c, vec![Op::Barrier { id: 1 }]))
        .collect();
    barrier_lanes[0].1 = vec![w(x()), w(y()), Op::Barrier { id: 1 }];
    barrier_lanes[1].1 = vec![Op::Barrier { id: 1 }, r(x()), r(y())];
    let barrier_refs: Vec<(usize, &[Op])> = barrier_lanes
        .iter()
        .map(|(c, ops)| (*c, ops.as_slice()))
        .collect();

    vec![
        (
            "CoWW", // same-cpu stores to one address perform in order
            litmus("coww", &[(0, &[w(x()), w(x()), r(x())])]),
        ),
        (
            "CoRR", // a reader's observations of one address never roll back
            litmus("corr", &[(0, &[w(x())]), (1, &[r(x()), r(x()), r(x())])]),
        ),
        (
            "CoRW", // read/write mix on one address across cpus
            litmus(
                "corw",
                &[(0, &[r(x()), w(x()), r(x())]), (1, &[w(x()), r(x())])],
            ),
        ),
        (
            "MP+locks", // message passing: data published under a lock
            litmus(
                "mp",
                &[
                    (0, &[acq(lk()), w(x()), w(y()), rel(lk())]),
                    (1, &[acq(lk()), r(y()), r(x()), rel(lk())]),
                    (2, &[acq(lk()), r(x()), w(y()), rel(lk())]),
                ],
            ),
        ),
        (
            "SB", // store buffering: both may read "initial" — RC allows it
            litmus("sb", &[(0, &[w(x()), r(y())]), (1, &[w(y()), r(x())])]),
        ),
        (
            "barrier-ordering", // pre-barrier stores are required reading after
            litmus("barrier", &barrier_refs),
        ),
    ]
}

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::None,
        Scheme::Sequential { degree: 2 },
        Scheme::IDetection { degree: 1 },
        Scheme::SimpleStride { degree: 1 },
        Scheme::DDetection { degree: 1 },
        Scheme::DDetectionAdaptive {
            degree: 1,
            max_depth: 4,
        },
        Scheme::AdaptiveSequential {
            initial_degree: 2,
            max_degree: 8,
        },
    ]
}

fn run_table(finite_slc: bool) {
    for scheme in all_schemes() {
        for (name, wl) in shapes() {
            let mut cfg = SystemConfig::paper_baseline().with_scheme(scheme);
            if finite_slc {
                cfg = cfg.with_finite_slc(1024);
            }
            let report = run_checked(cfg, wl);
            assert!(
                report.ok,
                "litmus {name} under {scheme:?} (finite_slc={finite_slc}): {:#?}",
                report.violations
            );
            assert!(
                report.reads_checked > 0,
                "litmus {name}: oracle judged no reads"
            );
        }
    }
}

/// Every litmus shape is violation-free under every scheme on the paper
/// baseline (infinite SLC).
#[test]
fn litmus_all_schemes_paper_baseline() {
    run_table(false);
}

/// The same on a tiny finite SLC, so replacements and writebacks race
/// the litmus accesses.
#[test]
fn litmus_all_schemes_small_cache() {
    run_table(true);
}

/// Serial and sharded checked runs must agree on *everything* the
/// oracle can observe: the simulation statistics, the verdict, the
/// violation strings in discovery order, and the observation counts.
/// Any divergence means the sharded kernel replayed a check hook out of
/// serial order.
fn assert_reports_identical(a: &CheckReport, b: &CheckReport, what: &str) {
    assert_eq!(
        a.result.exec_cycles, b.result.exec_cycles,
        "{what}: exec_cycles"
    );
    assert_eq!(a.result.nodes, b.result.nodes, "{what}: per-node counters");
    assert_eq!(a.result.net, b.result.net, "{what}: network stats");
    assert_eq!(a.result.dir, b.result.dir, "{what}: directory stats");
    assert_eq!(a.ok, b.ok, "{what}: verdict");
    assert_eq!(a.violations, b.violations, "{what}: violations");
    assert_eq!(a.reads_checked, b.reads_checked, "{what}: reads_checked");
    assert_eq!(a.writes_tracked, b.writes_tracked, "{what}: writes_tracked");
}

/// Every litmus shape, checked by the oracle on the sharded kernel at 2
/// and 4 threads, reports bit-identically to the serial checked run —
/// the CheckSink hooks fire in the same order with the same arguments.
#[test]
fn litmus_sharded_oracle_matches_serial() {
    for scheme in [Scheme::None, Scheme::DDetection { degree: 1 }] {
        for (name, wl) in shapes() {
            let cfg = SystemConfig::paper_baseline().with_scheme(scheme);
            let serial = run_checked(cfg.clone(), wl.clone());
            assert!(serial.ok, "litmus {name}: {:#?}", serial.violations);
            for threads in [2, 4] {
                let sharded = run_checked_threads(cfg.clone(), wl.clone(), threads);
                assert_reports_identical(
                    &serial,
                    &sharded,
                    &format!("litmus {name} under {scheme:?} at {threads} threads"),
                );
            }
        }
    }
}

/// Fuzz smoke: random traces (fixed seed) through the checked sharded
/// kernel agree with serial, observation counts included. This is the
/// adversarial counterpart to the hand-written shapes above — the fuzzer
/// mixes reads, writes, locks, and barriers in patterns nobody curated.
#[test]
fn fuzz_smoke_sharded_oracle_matches_serial() {
    const BLOCKS: u64 = 32;
    const LOCKS: u64 = 2;
    let mut rng = SplitMix64::seed_from_u64(0x5ad_cafe);
    for case in 0..4 {
        let wl = random_workload(&random_ops(&mut rng), BLOCKS, LOCKS);
        let cfg = SystemConfig::paper_baseline().with_finite_slc(1024);
        let serial = run_checked(cfg.clone(), wl.clone());
        assert!(serial.ok, "fuzz case {case}: {:#?}", serial.violations);
        assert!(
            serial.reads_checked > 0,
            "fuzz case {case}: judged no reads"
        );
        let sharded = run_checked_threads(cfg, wl, 2);
        assert_reports_identical(&serial, &sharded, &format!("fuzz case {case}"));
    }
}

/// The oracle actually resolves observations: in the CoRR shape the
/// reader's loads must observe cpu 0's write or the initial value, and
/// the suite counts both writes and reads.
#[test]
fn oracle_sees_the_traffic() {
    let report = run_checked(
        SystemConfig::paper_baseline(),
        litmus("corr", &[(0, &[w(x())]), (1, &[r(x()), r(x()), r(x())])]),
    );
    assert!(report.ok, "{:#?}", report.violations);
    assert_eq!(report.writes_tracked, 1);
    assert!(report.reads_checked >= 3);
}
