//! Oracle coverage for the modern workload families (CHASE, MSTRIDE,
//! SERVER): one scaled-down cell per family runs under every
//! prefetching scheme with the consistency oracle judging every load,
//! and a pinned seed set fuzzes the CHASE topology randomization.
//!
//! These are positive tests like the litmus suite: the protocol is
//! believed correct, so every cell must finish violation-free. The
//! families matter here because they stress shapes the SPLASH-derived
//! kernels do not — pointer chases with no spatial locality, deep
//! multi-stride nests, and lock-protected session records interleaved
//! with scans — all with prefetchers speculatively pulling blocks
//! underneath the oracle.

use pfsim::SystemConfig;
use pfsim_check::{run_checked, run_checked_threads, CheckReport};
use pfsim_prefetch::Scheme;
use pfsim_workloads::{chase, mstride, server, TraceWorkload, Workload};

/// Scaled-down CHASE cell: every structural feature of the family
/// (per-cpu rings, shared probe tree, seeded permutations) at a size
/// the debug test pass can afford under the oracle.
fn chase_cell(seed: u64) -> TraceWorkload {
    chase::build(chase::ChaseParams {
        list_nodes_per_cpu: 32,
        tree_nodes: 31,
        walks: 1,
        steps_per_walk: 32,
        probes_per_walk: 4,
        cpus: 16,
        seed,
    })
}

fn mstride_cell() -> TraceWorkload {
    mstride::build(mstride::MstrideParams {
        rows: 32,
        cols: 16,
        strides: (1, 16, 3),
        iters: 2,
        cpus: 16,
    })
}

fn server_cell() -> TraceWorkload {
    server::build(server::ServerParams {
        heap_blocks: 512,
        requests_per_cpu: 16,
        sessions: 8,
        hot_blocks: 4,
        scan_blocks: 4,
        cpus: 16,
        seed: 0x5e17e5,
    })
}

fn cells() -> Vec<TraceWorkload> {
    vec![chase_cell(7), mstride_cell(), server_cell()]
}

/// All seven prefetching schemes (the litmus suite's rotation).
fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::None,
        Scheme::Sequential { degree: 2 },
        Scheme::IDetection { degree: 1 },
        Scheme::SimpleStride { degree: 1 },
        Scheme::DDetection { degree: 1 },
        Scheme::DDetectionAdaptive {
            degree: 1,
            max_depth: 4,
        },
        Scheme::AdaptiveSequential {
            initial_degree: 2,
            max_degree: 8,
        },
    ]
}

fn assert_clean(report: &CheckReport, what: &str) {
    assert!(report.ok, "{what}: {:#?}", report.violations);
    assert!(report.reads_checked > 0, "{what}: oracle judged no reads");
}

/// One cell per family × all seven schemes, on a finite SLC so
/// replacements and writebacks race the family's traffic: every cell is
/// violation-free.
#[test]
fn families_all_schemes_violation_free() {
    for scheme in all_schemes() {
        for wl in cells() {
            let name = wl.name().to_string();
            let cfg = SystemConfig::paper_baseline()
                .with_scheme(scheme)
                .with_finite_slc(1024);
            let report = run_checked(cfg, wl);
            assert_clean(&report, &format!("{name} under {scheme:?}"));
        }
    }
}

/// The pinned CHASE fuzz-smoke seed set. Each seed selects a different
/// ring permutation and probe schedule; the set is pinned so a
/// regression in the topology randomizer reproduces instead of
/// depending on whatever seed a wall clock picked.
const CHASE_FUZZ_SEEDS: [u64; 5] = [0x01, 0x5eed, 0xc4a5e, 0xdead_beef, 0xffff_ffff_ffff_ffff];

/// Every pinned CHASE seed runs violation-free under the oracle, and
/// the 2-thread sharded checked run reports bit-identically to serial —
/// verdict, violation order, and observation counts included.
#[test]
fn chase_fuzz_seeds_clean_and_sharded_identical() {
    for seed in CHASE_FUZZ_SEEDS {
        let wl = chase_cell(seed);
        let cfg = SystemConfig::paper_baseline()
            .with_scheme(Scheme::DDetection { degree: 1 })
            .with_finite_slc(1024);
        let serial = run_checked(cfg.clone(), wl.clone());
        assert_clean(&serial, &format!("chase seed {seed:#x}"));
        let sharded = run_checked_threads(cfg, wl, 2);
        assert_eq!(serial.ok, sharded.ok, "seed {seed:#x}: verdict");
        assert_eq!(
            serial.violations, sharded.violations,
            "seed {seed:#x}: violations"
        );
        assert_eq!(
            serial.reads_checked, sharded.reads_checked,
            "seed {seed:#x}: reads_checked"
        );
        assert_eq!(
            serial.writes_tracked, sharded.writes_tracked,
            "seed {seed:#x}: writes_tracked"
        );
        assert_eq!(
            serial.result.exec_cycles, sharded.result.exec_cycles,
            "seed {seed:#x}: exec_cycles"
        );
    }
}
