//! Mutation runs: inject a protocol defect into the oracle's *model*
//! (the simulator is untouched) and prove the oracle catches it and the
//! shrinker reduces the triggering trace to a handful of ops.
//!
//! This is the suite's sensitivity audit. A consistency checker that
//! never fires is indistinguishable from a broken one; these tests pin
//! the two defect classes the paper's protocol machinery most plausibly
//! admits — a stale fill (fetch data lost, home serves old memory) and a
//! lost invalidation — and require both to be (a) detected on a random
//! trace and (b) shrunk to a minimal repro.

use pfsim::SystemConfig;
use pfsim_check::{run_with_fault, shrink, total_ops, FaultInjection};
use pfsim_mem::SplitMix64;
use pfsim_prefetch::Scheme;
use pfsim_workloads::fuzz::{random_ops, random_workload};

const BLOCKS: u64 = 32;
const LOCKS: u64 = 2;

fn fails(ops: &[Vec<(u8, u16)>], fault: FaultInjection) -> bool {
    let cfg = SystemConfig::paper_baseline().with_scheme(Scheme::None);
    !run_with_fault(cfg, random_workload(ops, BLOCKS, LOCKS), fault).ok
}

/// Finds a random trace the injected fault corrupts, then shrinks it.
fn catch_and_shrink(fault: FaultInjection, seed: u64) -> Vec<Vec<(u8, u16)>> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    for _ in 0..20 {
        let ops = random_ops(&mut rng);
        if fails(&ops, fault) {
            return shrink(ops, &mut |m| fails(m, fault));
        }
    }
    panic!("oracle is blind: {fault:?} not caught in 20 random traces");
}

/// The injected stale-fill bug (an owner's fetch reply losing its data)
/// is caught and shrinks to a repro of at most 10 ops.
#[test]
fn stale_fill_caught_and_shrunk() {
    let shrunk = catch_and_shrink(FaultInjection::DropFetchData, 0x5eed1);
    assert!(
        total_ops(&shrunk) <= 10,
        "repro did not minimize: {} ops: {shrunk:?}",
        total_ops(&shrunk)
    );
    assert!(fails(&shrunk, FaultInjection::DropFetchData));
    // The shrunk trace is still *correct* protocol without the fault.
    assert!(!fails(&shrunk, FaultInjection::None));
}

/// The injected lost-invalidation bug is caught and shrinks to a repro
/// of at most 10 ops.
#[test]
fn lost_invalidation_caught_and_shrunk() {
    let shrunk = catch_and_shrink(FaultInjection::SkipInvalidate, 0x5eed2);
    assert!(
        total_ops(&shrunk) <= 10,
        "repro did not minimize: {} ops: {shrunk:?}",
        total_ops(&shrunk)
    );
    assert!(fails(&shrunk, FaultInjection::SkipInvalidate));
    assert!(!fails(&shrunk, FaultInjection::None));
}

/// The canonical 3-op stale-fill repro, pinned: cpu 14 publishes a
/// value, cpu 15 reads it through a home fetch whose payload the fault
/// drops — the final-state differential sees memory stuck at the
/// initial value.
#[test]
fn minimal_stale_fill_repro() {
    let mut ops: Vec<Vec<(u8, u16)>> = vec![Vec::new(); 16];
    ops[14] = vec![(2, 84)]; // write block 84 % 32 = 20
    ops[15] = vec![(2, 440), (0, 116)]; // write elsewhere, read block 20
    assert!(fails(&ops, FaultInjection::DropFetchData));
    assert!(!fails(&ops, FaultInjection::None));
}
