//! Seeded random-trace fuzzer with the consistency oracle attached.
//!
//! Generates contended multi-CPU traces (the `pfsim_workloads::fuzz`
//! generator), runs them under every prefetching scheme with the oracle
//! installed, and — on a violation — delta-debugs the trace down to a
//! minimal repro printed as a ready-to-paste Rust test.
//!
//! Usage:
//!   pfsim-fuzz [--smoke] [--cases N] [--seed HEX] [--inject FAULT]
//!
//!   --smoke        the CI configuration: 200 cases, fixed seed
//!   --cases N      number of random cases (default 50)
//!   --seed HEX     RNG seed (default 0xf002)
//!   --inject FAULT validate the oracle's teeth by injecting a model
//!                  fault (`drop-fetch` or `skip-inval`); the run then
//!                  MUST find and shrink a violation
//!
//! Exit status: 0 = expectation met (clean, or — with --inject — caught
//! and shrunk), 1 = unexpected outcome.

use pfsim::SystemConfig;
use pfsim_check::{emit_repro, run_with_fault, shrink, total_ops, FaultInjection, OpMatrix};
use pfsim_mem::SplitMix64;
use pfsim_prefetch::Scheme;
use pfsim_workloads::fuzz::{random_ops, random_workload};

const SMOKE_CASES: usize = 200;
const SMOKE_SEED: u64 = 0x5eed_f002;

/// The scheme rotation: every case exercises a different prefetcher.
const SCHEMES: [Scheme; 6] = [
    Scheme::None,
    Scheme::Sequential { degree: 2 },
    Scheme::IDetection { degree: 1 },
    Scheme::SimpleStride { degree: 1 },
    Scheme::DDetection { degree: 1 },
    Scheme::AdaptiveSequential {
        initial_degree: 2,
        max_degree: 8,
    },
];

struct Args {
    cases: usize,
    seed: u64,
    fault: FaultInjection,
}

fn parse_args() -> Result<Args, String> {
    let mut cases = 50usize;
    let mut seed = 0xf002u64;
    let mut fault = FaultInjection::None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                cases = SMOKE_CASES;
                seed = SMOKE_SEED;
            }
            "--cases" => {
                let v = it.next().ok_or("--cases needs a value")?;
                cases = v.parse().map_err(|_| format!("bad --cases {v}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                let v = v.trim_start_matches("0x");
                seed = u64::from_str_radix(v, 16).map_err(|_| format!("bad --seed {v}"))?;
            }
            "--inject" => {
                let v = it.next().ok_or("--inject needs a value")?;
                fault = match v.as_str() {
                    "drop-fetch" => FaultInjection::DropFetchData,
                    "skip-inval" => FaultInjection::SkipInvalidate,
                    other => return Err(format!("unknown fault {other}")),
                };
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args { cases, seed, fault })
}

/// One case's full configuration, derived deterministically from the RNG.
struct Case {
    ops: OpMatrix,
    scheme: Scheme,
    finite_slc: bool,
    blocks: u64,
    locks: u64,
}

fn draw_case(rng: &mut SplitMix64, index: usize) -> Case {
    let ops = random_ops(rng);
    Case {
        ops,
        scheme: SCHEMES[index % SCHEMES.len()],
        finite_slc: index % 2 == 1,
        blocks: [32, 48, 96][index % 3],
        locks: [2, 4][index % 2],
    }
}

fn config_for(case: &Case) -> SystemConfig {
    let mut cfg = SystemConfig::paper_baseline().with_scheme(case.scheme);
    if case.finite_slc {
        cfg = cfg.with_finite_slc(1024);
    }
    cfg
}

fn run_case(case: &Case, ops: &[Vec<(u8, u16)>], fault: FaultInjection) -> (bool, Vec<String>) {
    let wl = random_workload(ops, case.blocks, case.locks);
    let report = run_with_fault(config_for(case), wl, fault);
    (report.ok, report.violations)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pfsim-fuzz: {e}");
            std::process::exit(1);
        }
    };

    let mut rng = SplitMix64::seed_from_u64(args.seed);
    let mut reads = 0u64;
    for i in 0..args.cases {
        let case = draw_case(&mut rng, i);
        let wl = random_workload(&case.ops, case.blocks, case.locks);
        let report = run_with_fault(config_for(&case), wl, args.fault);
        reads += report.reads_checked;
        if !report.ok {
            eprintln!(
                "case {i} (scheme {:?}, finite_slc {}, {} ops): {} violation(s)",
                case.scheme,
                case.finite_slc,
                total_ops(&case.ops),
                report.violations.len()
            );
            for v in report.violations.iter().take(5) {
                eprintln!("  {v}");
            }
            eprintln!("shrinking...");
            let shrunk = shrink(case.ops.clone(), &mut |m| !run_case(&case, m, args.fault).0);
            eprintln!("shrunk to {} ops; repro:\n", total_ops(&shrunk));
            let fault_expr = match args.fault {
                FaultInjection::None => "FaultInjection::None",
                FaultInjection::DropFetchData => "FaultInjection::DropFetchData",
                FaultInjection::SkipInvalidate => "FaultInjection::SkipInvalidate",
            };
            println!(
                "{}",
                emit_repro(
                    &shrunk,
                    case.blocks,
                    case.locks,
                    &format!("Scheme::{:?}", case.scheme),
                    fault_expr,
                )
            );
            // With an injected fault, catching + shrinking is the goal.
            std::process::exit(if args.fault == FaultInjection::None {
                1
            } else {
                0
            });
        }
    }

    if args.fault != FaultInjection::None {
        eprintln!(
            "pfsim-fuzz: injected fault {:?} was NOT caught in {} cases — the oracle is blind",
            args.fault, args.cases
        );
        std::process::exit(1);
    }
    println!(
        "pfsim-fuzz: {} cases clean ({} reads checked, seed {:#x})",
        args.cases, reads, args.seed
    );
}
