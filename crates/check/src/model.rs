//! The shadow data machine: who holds which value of every block.
//!
//! The simulator moves *permissions*, not data. This model replays the
//! data movement the protocol implies — write buffers, cache copies,
//! memory, and the three kinds of in-flight payloads (owner fetch
//! replies, home data replies, writebacks) — in terms of *write IDs*: a
//! block's contents are a map from byte address to the ID of the last
//! write that stored there. A read's observation is then a concrete
//! write ID (or "initial value"), which the [`Checker`](crate::Checker)
//! judges against release consistency.
//!
//! Fault injection lives here and only here: the simulator under test is
//! never modified. Dropping a fetch payload or skipping an invalidation
//! makes the shadow machine model a *broken* protocol, and the checker
//! (or the final-state differential) must notice the difference.

use pfsim_mem::{Addr, BlockAddr, FxHashMap, Geometry};
use std::collections::VecDeque;

/// Unique ID of a simulated store, in global issue order.
pub type WriteId = u64;

/// What a load observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observed {
    /// The location's initial (pre-run) value.
    Initial,
    /// A globally performed write.
    Applied(WriteId),
    /// The reader's own still-buffered write (store forwarding).
    OwnPending(WriteId),
}

/// A protocol defect deliberately modeled to validate the oracle's teeth
/// (the simulator itself is untouched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultInjection {
    /// Faithful modeling.
    #[default]
    None,
    /// An owner's fetch reply loses its payload: the home serves stale
    /// memory instead of the owner's dirty data (a classic stale-fill bug).
    DropFetchData,
    /// A cache ignores invalidations and keeps serving its stale copy.
    SkipInvalidate,
}

/// Block contents: byte address → last write ID. Missing = initial value.
pub type Block = FxHashMap<u64, WriteId>;

/// A node's copy of a block.
#[derive(Debug, Clone, Default)]
struct CopyLine {
    data: Block,
    owned: bool,
}

/// The shadow machine (see module docs).
#[derive(Clone)]
pub struct MachineModel {
    geometry: Geometry,
    /// Home memory contents per block.
    memory: FxHashMap<u64, Block>,
    /// Per node: block → copy.
    copies: Vec<FxHashMap<u64, CopyLine>>,
    /// Per node: mirrored FLWB write entries (addr, id), program order.
    flwb: Vec<VecDeque<(u64, WriteId)>>,
    /// Per node: writes drained from the FLWB but awaiting ownership of
    /// their block, applied in order at the exclusive fill / promote.
    pending: Vec<FxHashMap<u64, Vec<(u64, WriteId)>>>,
    /// Owner data travelling to the home (one fetch per block at a time).
    fetch_stash: FxHashMap<u64, Block>,
    /// Writebacks travelling to the home; `None` marks a dataless
    /// ownership relinquish (the failed-promote writeback).
    wb_stash: FxHashMap<(u64, u16), VecDeque<Option<Block>>>,
    /// Home data replies travelling to a requester.
    reply_stash: FxHashMap<(u64, u16), Block>,
    /// Payload staged by the current home action batch.
    batch_staged: Option<Block>,
    fault: FaultInjection,
    /// Model-desynchronization reports: places where the simulator's
    /// events contradict the model's bookkeeping (each one is a protocol
    /// bug or a model bug; both must be surfaced).
    desync: Vec<String>,
}

impl MachineModel {
    /// A fresh machine: all memory at initial values, all caches empty.
    pub fn new(geometry: Geometry, nodes: usize, fault: FaultInjection) -> Self {
        MachineModel {
            geometry,
            memory: FxHashMap::default(),
            copies: (0..nodes).map(|_| FxHashMap::default()).collect(),
            flwb: (0..nodes).map(|_| VecDeque::new()).collect(),
            pending: (0..nodes).map(|_| FxHashMap::default()).collect(),
            fetch_stash: FxHashMap::default(),
            wb_stash: FxHashMap::default(),
            reply_stash: FxHashMap::default(),
            batch_staged: None,
            fault,
            desync: Vec::new(),
        }
    }

    fn block_of(&self, addr: Addr) -> u64 {
        self.geometry.block_of(addr).as_u64()
    }

    fn note_desync(&mut self, msg: String) {
        if self.desync.len() < 32 {
            self.desync.push(msg);
        }
    }

    /// Accumulated desynchronization reports.
    pub fn desync(&self) -> &[String] {
        &self.desync
    }

    // ---- processor side -------------------------------------------------

    /// Mirrors a store entering the write buffer.
    pub fn write_issued(&mut self, cpu: u16, addr: Addr, id: WriteId) {
        self.flwb[cpu as usize].push_back((addr.as_u64(), id));
    }

    /// The front buffered store performed against an owned copy. Returns
    /// the applied ID (for the checker).
    pub fn write_applied(&mut self, cpu: u16, addr: Addr) -> Option<WriteId> {
        let (a, id) = match self.flwb[cpu as usize].pop_front() {
            Some(e) => e,
            None => {
                self.note_desync(format!("cpu {cpu}: write applied with empty shadow FLWB"));
                return None;
            }
        };
        if a != addr.as_u64() {
            self.note_desync(format!(
                "cpu {cpu}: applied write addr {addr:?} but shadow FLWB head is {a:#x}"
            ));
        }
        self.store(cpu, a, id);
        Some(id)
    }

    /// The front buffered store drained but awaits ownership.
    pub fn write_deferred(&mut self, cpu: u16, addr: Addr) {
        let (a, id) = match self.flwb[cpu as usize].pop_front() {
            Some(e) => e,
            None => {
                self.note_desync(format!("cpu {cpu}: write deferred with empty shadow FLWB"));
                return;
            }
        };
        if a != addr.as_u64() {
            self.note_desync(format!(
                "cpu {cpu}: deferred write addr {addr:?} but shadow FLWB head is {a:#x}"
            ));
        }
        let block = self.block_of(addr);
        self.pending[cpu as usize]
            .entry(block)
            .or_default()
            .push((a, id));
    }

    /// Writes `id` at `addr` into the cpu's (necessarily owned) copy.
    fn store(&mut self, cpu: u16, addr: u64, id: WriteId) {
        let block = self.geometry.block_of(Addr::new(addr)).as_u64();
        let mut desync = None;
        match self.copies[cpu as usize].get_mut(&block) {
            Some(line) => {
                if !line.owned {
                    desync = Some(format!(
                        "cpu {cpu}: store to block {block:#x} without ownership in shadow"
                    ));
                }
                line.data.insert(addr, id);
            }
            None => {
                desync = Some(format!(
                    "cpu {cpu}: store to block {block:#x} with no shadow copy"
                ))
            }
        }
        if let Some(msg) = desync {
            self.note_desync(msg);
        }
    }

    /// Resolves what a load of `addr` by `cpu` observes *now*: the
    /// youngest of the cpu's own unapplied stores to the address (store
    /// forwarding), else the node's copy of the block.
    pub fn observe(&mut self, cpu: u16, addr: Addr) -> Observed {
        let a = addr.as_u64();
        let ci = cpu as usize;
        // Buffered stores are younger than deferred ones (they drained
        // later), so scan the FLWB mirror first, newest first.
        if let Some(&(_, id)) = self.flwb[ci].iter().rev().find(|&&(wa, _)| wa == a) {
            return Observed::OwnPending(id);
        }
        let block = self.block_of(addr);
        if let Some(list) = self.pending[ci].get(&block) {
            if let Some(&(_, id)) = list.iter().rev().find(|&&(wa, _)| wa == a) {
                return Observed::OwnPending(id);
            }
        }
        match self.copies[ci].get(&block) {
            Some(line) => match line.data.get(&a) {
                Some(&id) => Observed::Applied(id),
                None => Observed::Initial,
            },
            None => {
                self.note_desync(format!(
                    "cpu {cpu}: load of {a:#x} completed with no shadow copy of block {block:#x}"
                ));
                Observed::Initial
            }
        }
    }

    // ---- SLC / protocol side -------------------------------------------

    /// A data reply fills the node's cache; pending stores perform if the
    /// fill grants ownership. Returns the applied IDs in order.
    pub fn fill(&mut self, cpu: u16, block: BlockAddr, exclusive: bool) -> Vec<WriteId> {
        let b = block.as_u64();
        let data = match self.reply_stash.remove(&(b, cpu)) {
            Some(d) => d,
            None => {
                self.note_desync(format!(
                    "cpu {cpu}: fill of block {b:#x} with no data reply in flight"
                ));
                Block::default()
            }
        };
        self.copies[cpu as usize].insert(
            b,
            CopyLine {
                data,
                owned: exclusive,
            },
        );
        if exclusive {
            self.apply_pending(cpu, b)
        } else {
            Vec::new()
        }
    }

    /// An upgrade acknowledged with the copy still resident: ownership
    /// gained, pending stores perform. Returns the applied IDs in order.
    pub fn promote(&mut self, cpu: u16, block: BlockAddr) -> Vec<WriteId> {
        let b = block.as_u64();
        match self.copies[cpu as usize].get_mut(&b) {
            Some(line) => line.owned = true,
            None => self.note_desync(format!(
                "cpu {cpu}: promote of block {b:#x} with no shadow copy"
            )),
        }
        self.apply_pending(cpu, b)
    }

    /// An upgrade acknowledged after the copy was displaced: the node
    /// relinquishes the dataless grant via a writeback; pending stores
    /// stay pending for the re-issued read-exclusive.
    pub fn promote_failed(&mut self, cpu: u16, block: BlockAddr) {
        self.wb_stash
            .entry((block.as_u64(), cpu))
            .or_default()
            .push_back(None);
    }

    fn apply_pending(&mut self, cpu: u16, block: u64) -> Vec<WriteId> {
        let list = self.pending[cpu as usize]
            .remove(&block)
            .unwrap_or_default();
        let mut ids = Vec::with_capacity(list.len());
        for (addr, id) in list {
            self.store(cpu, addr, id);
            ids.push(id);
        }
        ids
    }

    /// The node evicted a block; a dirty victim's data rides a writeback.
    pub fn evict(&mut self, cpu: u16, block: BlockAddr, dirty: bool) {
        let b = block.as_u64();
        let line = self.copies[cpu as usize].remove(&b);
        if dirty {
            match line {
                Some(line) => {
                    self.wb_stash
                        .entry((b, cpu))
                        .or_default()
                        .push_back(Some(line.data));
                }
                None => self.note_desync(format!(
                    "cpu {cpu}: dirty eviction of block {b:#x} with no shadow copy"
                )),
            }
        }
    }

    /// The node processed a protocol invalidation for the block.
    pub fn invalidated(&mut self, cpu: u16, block: BlockAddr) {
        if self.fault == FaultInjection::SkipInvalidate {
            return; // the modeled bug: the stale copy lives on
        }
        self.copies[cpu as usize].remove(&block.as_u64());
    }

    /// The owner answered a home fetch: its data (if it still held the
    /// copy) travels to the home; the copy is invalidated or downgraded.
    pub fn fetch_supplied(&mut self, cpu: u16, block: BlockAddr, inval: bool, had_copy: bool) {
        let b = block.as_u64();
        if had_copy {
            let data = match self.copies[cpu as usize].get(&b) {
                Some(line) => line.data.clone(),
                None => {
                    self.note_desync(format!(
                        "cpu {cpu}: fetch supplied for block {b:#x} with no shadow copy"
                    ));
                    Block::default()
                }
            };
            if self.fault != FaultInjection::DropFetchData {
                self.fetch_stash.insert(b, data);
            }
        }
        if inval {
            self.copies[cpu as usize].remove(&b);
        } else if let Some(line) = self.copies[cpu as usize].get_mut(&b) {
            line.owned = false;
        }
    }

    // ---- home side -------------------------------------------------------

    /// A demand-request (or invalidation-ack) batch begins: no payload.
    pub fn home_begin(&mut self) {
        self.batch_staged = None;
    }

    /// A writeback batch begins: its payload (if any) is staged.
    pub fn home_begin_writeback(&mut self, block: BlockAddr, from: u16) {
        let b = block.as_u64();
        let popped = self
            .wb_stash
            .get_mut(&(b, from))
            .and_then(VecDeque::pop_front);
        if popped.is_none() {
            self.note_desync(format!(
                "home: writeback of block {b:#x} from {from} with nothing in flight"
            ));
        }
        self.batch_staged = popped.flatten();
    }

    /// A fetch-reply batch begins: the owner's payload is staged.
    pub fn home_begin_fetch(&mut self, block: BlockAddr, had_copy: bool) {
        self.batch_staged = if had_copy {
            // Missing stash = the injected DropFetchData defect: the home
            // falls back to (stale) memory exactly as the bug would.
            self.fetch_stash.remove(&block.as_u64())
        } else {
            None
        };
    }

    /// The batch read memory: subsequent replies carry memory's value.
    pub fn home_read_memory(&mut self, block: BlockAddr) {
        self.batch_staged = Some(
            self.memory
                .get(&block.as_u64())
                .cloned()
                .unwrap_or_default(),
        );
    }

    /// The batch committed its staged payload to memory (no-op for a
    /// dataless relinquish).
    pub fn home_write_memory(&mut self, block: BlockAddr) {
        if let Some(data) = self.batch_staged.clone() {
            self.memory.insert(block.as_u64(), data);
        }
    }

    /// The batch sent a data reply to `to`, carrying the staged payload
    /// (or memory's value when nothing was staged).
    pub fn home_send_data(&mut self, block: BlockAddr, to: u16) {
        let b = block.as_u64();
        let data = match &self.batch_staged {
            Some(d) => d.clone(),
            None => self.memory.get(&b).cloned().unwrap_or_default(),
        };
        self.reply_stash.insert((b, to), data);
    }

    // ---- final state -----------------------------------------------------

    /// Differential final-state comparison against the flat reference
    /// (`expected`: block → addr → last write in coherence order).
    /// Returns human-readable violations; empty = the machine quiesced
    /// with no data lost, duplicated stale, or still in flight.
    pub fn final_state_violations(
        &self,
        expected: &FxHashMap<u64, Block>,
        describe: impl Fn(WriteId) -> String,
    ) -> Vec<String> {
        let mut out = Vec::new();
        for (cpu, q) in self.flwb.iter().enumerate() {
            if !q.is_empty() {
                out.push(format!("cpu {cpu}: {} writes never left the FLWB", q.len()));
            }
        }
        for (cpu, p) in self.pending.iter().enumerate() {
            let n: usize = p.values().map(Vec::len).sum();
            if n > 0 {
                out.push(format!("cpu {cpu}: {n} writes never gained ownership"));
            }
        }
        if !self.fetch_stash.is_empty() {
            out.push(format!(
                "{} fetch replies still in flight",
                self.fetch_stash.len()
            ));
        }
        if !self.reply_stash.is_empty() {
            out.push(format!(
                "{} data replies still in flight",
                self.reply_stash.len()
            ));
        }
        let wb: usize = self.wb_stash.values().map(VecDeque::len).sum();
        if wb > 0 {
            out.push(format!("{wb} writebacks still in flight"));
        }

        let mut blocks: Vec<u64> = expected.keys().chain(self.memory.keys()).copied().collect();
        for copies in &self.copies {
            blocks.extend(copies.keys().copied());
        }
        blocks.sort_unstable();
        blocks.dedup();

        let empty = Block::default();
        for b in blocks {
            let want = expected.get(&b).unwrap_or(&empty);
            let owners: Vec<usize> = self
                .copies
                .iter()
                .enumerate()
                .filter(|(_, c)| c.get(&b).is_some_and(|l| l.owned))
                .map(|(i, _)| i)
                .collect();
            if owners.len() > 1 {
                out.push(format!("block {b:#x}: multiple owners {owners:?}"));
            }
            // With a live owner, memory may legitimately be stale; without
            // one, memory is the block's ground truth.
            if owners.is_empty() {
                let mem = self.memory.get(&b).unwrap_or(&empty);
                if let Some(msg) = diff_block(b, "memory", mem, want, &describe) {
                    out.push(msg);
                }
            }
            for (cpu, copies) in self.copies.iter().enumerate() {
                if let Some(line) = copies.get(&b) {
                    let who = format!("cpu {cpu} copy");
                    if let Some(msg) = diff_block(b, &who, &line.data, want, &describe) {
                        out.push(msg);
                    }
                }
            }
            if out.len() > 32 {
                return out;
            }
        }
        out
    }
}

/// Compares a block's contents against the flat reference.
fn diff_block(
    block: u64,
    who: &str,
    got: &Block,
    want: &Block,
    describe: &impl Fn(WriteId) -> String,
) -> Option<String> {
    let mut addrs: Vec<u64> = got.keys().chain(want.keys()).copied().collect();
    addrs.sort_unstable();
    addrs.dedup();
    for a in addrs {
        let g = got.get(&a);
        let w = want.get(&a);
        if g != w {
            let gs = g.map_or("initial".to_string(), |&id| describe(id));
            let ws = w.map_or("initial".to_string(), |&id| describe(id));
            return Some(format!(
                "block {block:#x} addr {a:#x}: {who} holds {gs}, flat reference holds {ws}"
            ));
        }
    }
    None
}
