//! The online consistency oracle: a [`CheckSink`] that couples the
//! shadow [`MachineModel`] to the RC [`Checker`].

use crate::checker::Checker;
use crate::model::{FaultInjection, MachineModel, Observed};
use pfsim::{CheckSink, SimResult, System, SystemConfig};
use pfsim_mem::{Addr, BlockAddr, FxHashMap, Geometry};
use pfsim_workloads::Workload;
use std::any::Any;

/// The oracle: installs into a [`System`] via
/// [`set_check_sink`](System::set_check_sink) and judges every load of
/// the run; at completion the flat reference memory is compared against
/// the machine's final state.
#[derive(Clone)]
pub struct ConsistencyOracle {
    geometry: Geometry,
    model: MachineModel,
    checker: Checker,
    /// Per cpu: the byte address of the blocked load awaiting completion.
    pending_read: Vec<Option<Addr>>,
    finished: bool,
    final_violations: Vec<String>,
}

impl ConsistencyOracle {
    /// An oracle for a machine with `nodes` processors.
    pub fn new(geometry: Geometry, nodes: usize) -> Self {
        Self::with_fault(geometry, nodes, FaultInjection::None)
    }

    /// An oracle whose *model* deliberately mis-models the protocol (the
    /// simulator is untouched); the run must then report violations,
    /// which validates the oracle's sensitivity.
    pub fn with_fault(geometry: Geometry, nodes: usize, fault: FaultInjection) -> Self {
        ConsistencyOracle {
            geometry,
            model: MachineModel::new(geometry, nodes, fault),
            checker: Checker::new(nodes),
            pending_read: vec![None; nodes],
            finished: false,
            final_violations: Vec::new(),
        }
    }

    /// `true` when no violation of any kind was found.
    pub fn ok(&self) -> bool {
        self.checker.violations().is_empty()
            && self.model.desync().is_empty()
            && self.final_violations.is_empty()
    }

    /// All violations: consistency, model desynchronization, final state.
    pub fn violations(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        out.extend(self.checker.violations().iter().cloned());
        out.extend(
            self.model
                .desync()
                .iter()
                .map(|d| format!("model desync: {d}")),
        );
        out.extend(self.final_violations.iter().cloned());
        out
    }

    /// Load observations judged.
    pub fn reads_checked(&self) -> u64 {
        self.checker.reads_checked()
    }

    /// Stores tracked.
    pub fn writes_tracked(&self) -> u64 {
        self.checker.writes_tracked()
    }

    fn observe_at(&mut self, cpu: u16, addr: Addr) {
        let obs = self.model.observe(cpu, addr);
        self.checker.observe(cpu, addr, obs);
    }
}

impl CheckSink for ConsistencyOracle {
    fn write_issued(&mut self, cpu: u16, addr: Addr) {
        let id = self.checker.issue(cpu, addr);
        self.model.write_issued(cpu, addr, id);
    }

    fn read_flc_hit(&mut self, cpu: u16, addr: Addr) {
        self.observe_at(cpu, addr);
    }

    fn read_request(&mut self, cpu: u16, addr: Addr) {
        self.pending_read[cpu as usize] = Some(addr);
    }

    fn read_completed(&mut self, cpu: u16, block: BlockAddr) {
        match self.pending_read[cpu as usize].take() {
            Some(addr) if self.geometry.block_of(addr) == block => self.observe_at(cpu, addr),
            // A completion for a block the cpu never requested (or with
            // no request outstanding) is itself a protocol bug; surface
            // it through the checker as an impossible observation.
            _ => self
                .checker
                .observe(cpu, Addr::new(block.as_u64()), Observed::Applied(u64::MAX)),
        }
    }

    fn write_applied(&mut self, cpu: u16, addr: Addr) {
        if let Some(id) = self.model.write_applied(cpu, addr) {
            self.checker.apply(id);
        }
    }

    fn write_deferred(&mut self, cpu: u16, addr: Addr) {
        self.model.write_deferred(cpu, addr);
    }

    fn fill(&mut self, cpu: u16, block: BlockAddr, exclusive: bool) {
        for id in self.model.fill(cpu, block, exclusive) {
            self.checker.apply(id);
        }
    }

    fn promote(&mut self, cpu: u16, block: BlockAddr) {
        for id in self.model.promote(cpu, block) {
            self.checker.apply(id);
        }
    }

    fn promote_failed(&mut self, cpu: u16, block: BlockAddr) {
        self.model.promote_failed(cpu, block);
    }

    fn evict(&mut self, cpu: u16, block: BlockAddr, dirty: bool) {
        self.model.evict(cpu, block, dirty);
    }

    fn invalidated(&mut self, cpu: u16, block: BlockAddr) {
        self.model.invalidated(cpu, block);
    }

    fn fetch_supplied(&mut self, cpu: u16, block: BlockAddr, inval: bool, had_copy: bool) {
        self.model.fetch_supplied(cpu, block, inval, had_copy);
    }

    fn release_drained(&mut self, cpu: u16, lock: Addr) {
        self.checker.release(cpu, lock);
    }

    fn barrier_drained(&mut self, cpu: u16, id: u32) {
        self.checker.barrier_arrive(cpu, id);
    }

    fn lock_granted(&mut self, cpu: u16, lock: Addr) {
        self.checker.acquire(cpu, lock);
    }

    fn barrier_released(&mut self, cpu: u16, id: u32) {
        self.checker.barrier_release(cpu, id);
    }

    fn home_begin(&mut self, _home: u16, _block: BlockAddr) {
        self.model.home_begin();
    }

    fn home_begin_writeback(&mut self, _home: u16, block: BlockAddr, from: u16) {
        self.model.home_begin_writeback(block, from);
    }

    fn home_begin_fetch(&mut self, _home: u16, block: BlockAddr, had_copy: bool) {
        self.model.home_begin_fetch(block, had_copy);
    }

    fn home_read_memory(&mut self, block: BlockAddr) {
        self.model.home_read_memory(block);
    }

    fn home_write_memory(&mut self, block: BlockAddr) {
        self.model.home_write_memory(block);
    }

    fn home_send_data(&mut self, block: BlockAddr, to: u16) {
        self.model.home_send_data(block, to);
    }

    fn run_finished(&mut self) {
        self.finished = true;
        for id in self.checker.unapplied() {
            self.final_violations
                .push(format!("{} never performed", self.checker.describe(id)));
        }
        let mut expected: FxHashMap<u64, crate::model::Block> = FxHashMap::default();
        for (&addr, &id) in self.checker.flat() {
            let b = self.geometry.block_of(Addr::new(addr)).as_u64();
            expected.entry(b).or_default().insert(addr, id);
        }
        let checker = &self.checker;
        self.final_violations.extend(
            self.model
                .final_state_violations(&expected, |id| checker.describe(id)),
        );
    }

    fn fork(&self) -> Option<Box<dyn CheckSink>> {
        Some(Box::new(self.clone()))
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Result of a checked run.
pub struct CheckReport {
    /// The simulation's statistics (timing is unaffected by the oracle).
    pub result: SimResult,
    /// No violations found.
    pub ok: bool,
    /// Everything found, in discovery order.
    pub violations: Vec<String>,
    /// Load observations judged.
    pub reads_checked: u64,
    /// Stores tracked.
    pub writes_tracked: u64,
}

/// Runs `workload` on `cfg` with the oracle installed.
pub fn run_checked<W: Workload>(cfg: SystemConfig, workload: W) -> CheckReport {
    run_with_fault(cfg, workload, FaultInjection::None)
}

/// As [`run_checked`], but on the sharded event kernel with `threads`
/// worker threads. The sharded kernel replays check hooks on the leader
/// in exact serial order, so the report — verdict, violation strings,
/// and observation counts — is bit-identical to [`run_checked`]'s.
pub fn run_checked_threads<W: Workload + Clone + Send>(
    cfg: SystemConfig,
    workload: W,
    threads: usize,
) -> CheckReport {
    let geometry = cfg.geometry;
    let nodes = cfg.nodes as usize;
    let mut sys = System::new(cfg, workload);
    sys.set_check_sink(Box::new(ConsistencyOracle::with_fault(
        geometry,
        nodes,
        FaultInjection::None,
    )));
    let result = sys.run_threads(threads);
    report_from(sys, result)
}

/// As [`run_checked`], with a deliberate model defect injected (for
/// validating that the oracle catches the corresponding bug class).
pub fn run_with_fault<W: Workload>(
    cfg: SystemConfig,
    workload: W,
    fault: FaultInjection,
) -> CheckReport {
    let geometry = cfg.geometry;
    let nodes = cfg.nodes as usize;
    let mut sys = System::new(cfg, workload);
    sys.set_check_sink(Box::new(ConsistencyOracle::with_fault(
        geometry, nodes, fault,
    )));
    let result = sys.run();
    report_from(sys, result)
}

/// Recovers the installed oracle from a finished system and folds its
/// verdict into a [`CheckReport`].
fn report_from<W: Workload>(mut sys: System<W>, result: SimResult) -> CheckReport {
    let oracle = sys
        .take_check_sink()
        .expect("sink installed above")
        .into_any()
        .downcast::<ConsistencyOracle>()
        .expect("sink is the oracle");
    CheckReport {
        result,
        ok: oracle.ok(),
        violations: oracle.violations(),
        reads_checked: oracle.reads_checked(),
        writes_tracked: oracle.writes_tracked(),
    }
}
