//! Delta-debugging trace shrinker.
//!
//! Fuzz failures arrive as a 16-lane op matrix (see
//! [`pfsim_workloads::fuzz`]). Shrinking operates on the *matrix*, not
//! the generated trace: the generator re-balances locks and re-appends
//! the final barrier on every candidate, so every candidate is
//! well-formed by construction and the failure predicate stays a simple
//! "regenerate and re-run". The strategy is classic ddmin, coarse to
//! fine: drop whole lanes, then binary-chunk halves per lane, then
//! single entries, looping to a fixpoint.

/// One CPU lane of generator input.
pub type Lane = Vec<(u8, u16)>;
/// The full generator input: one lane per CPU.
pub type OpMatrix = Vec<Lane>;

/// Total entries across all lanes.
pub fn total_ops(matrix: &[Lane]) -> usize {
    matrix.iter().map(Vec::len).sum()
}

/// Shrinks `matrix` to a locally minimal input for which `fails` still
/// returns `true`. `fails(&matrix)` must hold on entry.
pub fn shrink(mut matrix: OpMatrix, fails: &mut dyn FnMut(&[Lane]) -> bool) -> OpMatrix {
    debug_assert!(fails(&matrix), "shrink called on a passing input");
    loop {
        let before = total_ops(&matrix);

        // Coarsest first: empty whole lanes.
        for lane in 0..matrix.len() {
            if matrix[lane].is_empty() {
                continue;
            }
            let saved = std::mem::take(&mut matrix[lane]);
            if !fails(&matrix) {
                matrix[lane] = saved;
            }
        }

        // Per lane: remove chunks, halving the chunk size down to 1.
        for lane in 0..matrix.len() {
            let mut chunk = matrix[lane].len().div_ceil(2).max(1);
            loop {
                let mut start = 0;
                while start < matrix[lane].len() {
                    let end = (start + chunk).min(matrix[lane].len());
                    let mut candidate = matrix.clone();
                    candidate[lane].drain(start..end);
                    if fails(&candidate) {
                        matrix = candidate;
                        // Same start now addresses the next chunk.
                    } else {
                        start = end;
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk = (chunk / 2).max(1);
            }
        }

        if total_ops(&matrix) == before {
            return matrix;
        }
    }
}

/// Renders a shrunk matrix as a ready-to-paste Rust test reproducing the
/// failure. `scheme_expr` and `fault_expr` are Rust expressions (e.g.
/// `"Scheme::None"`, `"FaultInjection::DropFetchData"`).
pub fn emit_repro(
    matrix: &[Lane],
    blocks: u64,
    locks: u64,
    scheme_expr: &str,
    fault_expr: &str,
) -> String {
    let mut lanes = String::new();
    for lane in matrix {
        let entries: Vec<String> = lane.iter().map(|&(k, v)| format!("({k}, {v})")).collect();
        lanes.push_str(&format!("        vec![{}],\n", entries.join(", ")));
    }
    format!(
        r#"#[test]
fn shrunk_repro() {{
    use pfsim::SystemConfig;
    use pfsim_check::{{run_with_fault, FaultInjection}};
    use pfsim_prefetch::Scheme;
    use pfsim_workloads::fuzz::random_workload;

    let ops: Vec<Vec<(u8, u16)>> = vec![
{lanes}    ];
    let cfg = SystemConfig::paper_baseline().with_scheme({scheme_expr});
    let report = run_with_fault(cfg, random_workload(&ops, {blocks}, {locks}), {fault_expr});
    assert!(!report.ok, "expected the oracle to flag this trace");
    for v in &report.violations {{
        eprintln!("violation: {{v}}");
    }}
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Predicate: fails while lane 0 still contains a `(9, _)` entry.
    fn fails_if_nine(m: &[Lane]) -> bool {
        m.iter().any(|l| l.iter().any(|&(k, _)| k == 9))
    }

    #[test]
    fn shrinks_to_the_single_triggering_entry() {
        let matrix: OpMatrix = vec![
            vec![(1, 1), (2, 2), (9, 7), (3, 3)],
            vec![(4, 4); 10],
            vec![],
        ];
        let out = shrink(matrix, &mut |m| fails_if_nine(m));
        assert_eq!(total_ops(&out), 1);
        assert!(fails_if_nine(&out));
    }

    #[test]
    fn repro_contains_all_lanes_and_the_fault() {
        let s = emit_repro(
            &[vec![(2, 3)], vec![(0, 3)]],
            48,
            4,
            "Scheme::None",
            "FaultInjection::DropFetchData",
        );
        assert!(s.contains("vec![(2, 3)],"));
        assert!(s.contains("vec![(0, 3)],"));
        assert!(s.contains("FaultInjection::DropFetchData"));
        assert!(s.contains("random_workload(&ops, 48, 4)"));
    }
}
