//! The axiomatic release-consistency + per-location-coherence checker.
//!
//! Coherence order per location is the *apply* order: a store performs
//! globally only while its node holds the block exclusively, and the
//! simulator's event loop serializes those instants, so assigning each
//! applied store a global sequence number yields, per address, exactly
//! the location's coherence order. The checker then enforces:
//!
//! - **Per-location coherence (CoRR/CoRW):** each processor's successive
//!   observations of an address never move backwards in coherence order.
//!   A processor may lag (read an old value — RC allows it) but may not
//!   un-read a newer value it has already observed.
//! - **CoWW:** one processor's stores to one address perform in program
//!   order (the FIFO write buffer guarantees it; the checker verifies).
//! - **Read-own-write:** a processor always observes its own latest
//!   store, buffered or performed (store forwarding is always legal).
//! - **Synchronization order:** a release publishes the releaser's
//!   coherence knowledge (its *bound*: the newest write per address it
//!   has observed or performed); the matching acquire joins it. Barriers
//!   join every participant's bound into every participant. After the
//!   join, observing anything older — including the initial value — is a
//!   violation. This is what forbids the message-passing anomaly while
//!   still allowing store-buffering, which RC permits.
//!
//! What RC *allows* (and the checker therefore accepts): reading stale
//! values absent synchronization, store-buffering outcomes (both
//! processors reading "initial" in SB), and arbitrary interleavings of
//! unsynchronized conflicting writes.

use crate::model::{Observed, WriteId};
use pfsim_mem::{Addr, FxHashMap};

/// Metadata of one simulated store.
#[derive(Debug, Clone, Copy)]
pub struct WriteMeta {
    /// Issuing processor.
    pub cpu: u16,
    /// Byte address stored to.
    pub addr: u64,
    /// Per-processor program-order index.
    pub po: u64,
    /// Global coherence sequence number, once performed.
    pub coseq: Option<u64>,
}

/// Per-processor coherence knowledge: address → newest observed coseq.
type Bound = FxHashMap<u64, u64>;

/// The checker (see module docs).
#[derive(Clone)]
pub struct Checker {
    writes: Vec<WriteMeta>,
    issued_per_cpu: Vec<u64>,
    next_coseq: u64,
    bound: Vec<Bound>,
    /// Per (cpu, addr): program-order index of the last performed store
    /// (CoWW monotonicity).
    last_applied_po: FxHashMap<(u16, u64), u64>,
    /// lock address → the publishing releaser's bound snapshot.
    lock_publish: FxHashMap<u64, Bound>,
    /// barrier id → join of every arrived participant's bound.
    barrier_accum: FxHashMap<u32, Bound>,
    /// addr → last write in coherence order (the flat reference memory).
    flat: FxHashMap<u64, WriteId>,
    violations: Vec<String>,
    reads_checked: u64,
}

fn join_into(dst: &mut Bound, src: &Bound) {
    for (&addr, &seq) in src {
        let e = dst.entry(addr).or_insert(seq);
        *e = (*e).max(seq);
    }
}

impl Checker {
    /// A fresh checker for `nodes` processors.
    pub fn new(nodes: usize) -> Self {
        Checker {
            writes: Vec::new(),
            issued_per_cpu: vec![0; nodes],
            next_coseq: 0,
            bound: (0..nodes).map(|_| Bound::default()).collect(),
            last_applied_po: FxHashMap::default(),
            lock_publish: FxHashMap::default(),
            barrier_accum: FxHashMap::default(),
            flat: FxHashMap::default(),
            violations: Vec::new(),
            reads_checked: 0,
        }
    }

    fn report(&mut self, msg: String) {
        if self.violations.len() < 32 {
            self.violations.push(msg);
        }
    }

    /// Registers a newly issued store and returns its ID.
    pub fn issue(&mut self, cpu: u16, addr: Addr) -> WriteId {
        let id = self.writes.len() as WriteId;
        let po = self.issued_per_cpu[cpu as usize];
        self.issued_per_cpu[cpu as usize] += 1;
        self.writes.push(WriteMeta {
            cpu,
            addr: addr.as_u64(),
            po,
            coseq: None,
        });
        id
    }

    /// Store `id` performed globally: assign its coherence sequence
    /// number, check CoWW, advance the writer's bound and the flat
    /// reference.
    pub fn apply(&mut self, id: WriteId) {
        let meta = self.writes[id as usize];
        if meta.coseq.is_some() {
            self.report(format!("{} performed twice", self.describe(id)));
            return;
        }
        let seq = self.next_coseq;
        self.next_coseq += 1;
        self.writes[id as usize].coseq = Some(seq);
        let key = (meta.cpu, meta.addr);
        if let Some(&prev_po) = self.last_applied_po.get(&key) {
            if prev_po > meta.po {
                self.report(format!(
                    "CoWW: {} performed after a program-order-later store to the same address",
                    self.describe(id)
                ));
            }
        }
        self.last_applied_po.insert(key, meta.po);
        let b = self.bound[meta.cpu as usize]
            .entry(meta.addr)
            .or_insert(seq);
        *b = (*b).max(seq);
        self.flat.insert(meta.addr, id);
    }

    /// Judges a load observation against the reader's coherence bound.
    pub fn observe(&mut self, cpu: u16, addr: Addr, obs: Observed) {
        self.reads_checked += 1;
        let a = addr.as_u64();
        match obs {
            Observed::OwnPending(_) => {} // store forwarding: always legal
            Observed::Initial => {
                if let Some(&seq) = self.bound[cpu as usize].get(&a) {
                    let newest = self.describe_by_seq(a, seq);
                    self.report(format!(
                        "coherence rollback: cpu {cpu} read the initial value of {a:#x} after \
                         {newest} became required reading"
                    ));
                }
            }
            Observed::Applied(id) => {
                let Some(seq) = self.writes[id as usize].coseq else {
                    self.report(format!(
                        "cpu {cpu} observed {} before it performed",
                        self.describe(id)
                    ));
                    return;
                };
                if let Some(&bound) = self.bound[cpu as usize].get(&a) {
                    if seq < bound {
                        let newest = self.describe_by_seq(a, bound);
                        self.report(format!(
                            "coherence rollback: cpu {cpu} read {} of {a:#x} after {newest} \
                             became required reading",
                            self.describe(id)
                        ));
                        return;
                    }
                }
                self.bound[cpu as usize].insert(a, seq);
            }
        }
    }

    /// A release drained: publish the releaser's bound on the lock.
    /// (Queue-based locks grant in order, and bounds only grow, so the
    /// newest publish transitively covers all earlier ones.)
    pub fn release(&mut self, cpu: u16, lock: Addr) {
        let snap = self.bound[cpu as usize].clone();
        self.lock_publish.insert(lock.as_u64(), snap);
    }

    /// An acquire granted: join the lock's publication into the acquirer.
    pub fn acquire(&mut self, cpu: u16, lock: Addr) {
        if let Some(pubd) = self.lock_publish.get(&lock.as_u64()) {
            let pubd = pubd.clone();
            join_into(&mut self.bound[cpu as usize], &pubd);
        }
    }

    /// A barrier arrival drained: contribute the bound to the barrier.
    pub fn barrier_arrive(&mut self, cpu: u16, id: u32) {
        let snap = self.bound[cpu as usize].clone();
        join_into(self.barrier_accum.entry(id).or_default(), &snap);
    }

    /// A barrier released this cpu: join everyone's contributions.
    pub fn barrier_release(&mut self, cpu: u16, id: u32) {
        if let Some(accum) = self.barrier_accum.get(&id) {
            let accum = accum.clone();
            join_into(&mut self.bound[cpu as usize], &accum);
        }
    }

    /// Stores that never performed (each is a lost write).
    pub fn unapplied(&self) -> Vec<WriteId> {
        self.writes
            .iter()
            .enumerate()
            .filter(|(_, m)| m.coseq.is_none())
            .map(|(i, _)| i as WriteId)
            .collect()
    }

    /// The flat reference memory: addr → last write in coherence order.
    pub fn flat(&self) -> &FxHashMap<u64, WriteId> {
        &self.flat
    }

    /// Human-readable description of a write.
    pub fn describe(&self, id: WriteId) -> String {
        let m = self.writes[id as usize];
        format!("write #{id} (cpu {} po {} to {:#x})", m.cpu, m.po, m.addr)
    }

    fn describe_by_seq(&self, addr: u64, seq: u64) -> String {
        self.writes
            .iter()
            .position(|m| m.addr == addr && m.coseq == Some(seq))
            .map_or_else(
                || format!("a write at coseq {seq}"),
                |i| self.describe(i as WriteId),
            )
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Number of load observations judged.
    pub fn reads_checked(&self) -> u64 {
        self.reads_checked
    }

    /// Number of stores registered.
    pub fn writes_tracked(&self) -> u64 {
        self.writes.len() as u64
    }
}
