//! `pfsim-check` — the correctness layer of the prefetching study.
//!
//! The timing simulator in `pfsim` moves cache *permissions*; this crate
//! supplies the value semantics and judges them. Three pieces:
//!
//! - A shadow [`MachineModel`] driven by the simulator's
//!   [`CheckSink`](pfsim::CheckSink) hooks replays the data movement the
//!   protocol implies, so every simulated load resolves to the unique
//!   write it observed (or the initial value).
//! - An axiomatic [`Checker`] judges each observation against release
//!   consistency + per-location coherence, and a flat reference memory
//!   supplies a differential final-state comparison (a whole-run "no
//!   data lost or duplicated stale" audit).
//! - A delta-debugging [`shrink`]er turns random fuzz failures into
//!   minimal, ready-to-paste regression tests (see the `pfsim-fuzz`
//!   binary).
//!
//! The oracle follows the repo's instrumentation discipline: opt-in
//! (install per run, or `PFSIM_CHECK=1` through the bench runner),
//! zero-cost when off, and timing-neutral when on — every hook is
//! read-only with respect to simulator state, so pclock totals are
//! bit-identical with checking enabled.
//!
//! # Example
//!
//! ```
//! use pfsim::SystemConfig;
//! use pfsim_check::run_checked;
//! use pfsim_workloads::micro;
//!
//! let report = run_checked(
//!     SystemConfig::paper_baseline(),
//!     micro::sequential_walk(16, 64, 1),
//! );
//! assert!(report.ok, "{:?}", report.violations);
//! assert!(report.reads_checked > 0);
//! ```

#![warn(missing_docs)]

mod checker;
mod model;
mod oracle;
mod shrink;

pub use checker::{Checker, WriteMeta};
pub use model::{Block, FaultInjection, MachineModel, Observed, WriteId};
pub use oracle::{
    run_checked, run_checked_threads, run_with_fault, CheckReport, ConsistencyOracle,
};
pub use shrink::{emit_repro, shrink, total_ops, Lane, OpMatrix};
