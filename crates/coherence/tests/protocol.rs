//! Protocol-level tests of the full-map directory automaton: every stable
//! transition, the transient races, and a randomized model check.

use pfsim_coherence::{ActionBuf, DirAction, DirRequest, DirState, Directory, SharerSet};
use pfsim_mem::{BlockAddr, NodeId, SplitMix64};

const B: BlockAddr = BlockAddr::new(100);

fn n(i: u16) -> NodeId {
    NodeId::new(i)
}

fn sharers(nodes: &[u16]) -> SharerSet {
    nodes.iter().map(|&i| n(i)).collect()
}

// Vec-returning wrappers over the buffer-appending directory API, so the
// assertions below can compare whole action lists directly.
fn req(dir: &mut Directory, block: BlockAddr, request: DirRequest) -> Vec<DirAction> {
    let mut buf = ActionBuf::new();
    dir.request(block, request, &mut buf);
    buf.to_vec()
}

fn fetch_done(dir: &mut Directory, block: BlockAddr, had_copy: bool) -> Vec<DirAction> {
    let mut buf = ActionBuf::new();
    dir.fetch_done(block, had_copy, &mut buf);
    buf.to_vec()
}

fn inval_ack(dir: &mut Directory, block: BlockAddr) -> Vec<DirAction> {
    let mut buf = ActionBuf::new();
    dir.inval_ack(block, &mut buf);
    buf.to_vec()
}

#[test]
fn cold_read_is_served_by_memory() {
    let mut dir = Directory::new(16);
    let actions = req(&mut dir, B, DirRequest::read_shared(n(3)));
    assert_eq!(
        actions,
        [
            DirAction::ReadMemory,
            DirAction::SendData {
                to: n(3),
                exclusive: false,
                prefetch: false
            }
        ]
    );
    assert_eq!(dir.state(B), DirState::Shared(sharers(&[3])));
    assert!(!dir.is_busy(B));
}

#[test]
fn prefetch_flag_propagates_to_reply() {
    let mut dir = Directory::new(16);
    let actions = req(&mut dir, B, DirRequest::prefetch(n(5)));
    assert_eq!(
        actions[1],
        DirAction::SendData {
            to: n(5),
            exclusive: false,
            prefetch: true
        }
    );
}

#[test]
fn additional_readers_accumulate_in_presence_vector() {
    let mut dir = Directory::new(16);
    for i in [0u16, 4, 9, 15] {
        req(&mut dir, B, DirRequest::read_shared(n(i)));
    }
    assert_eq!(dir.state(B), DirState::Shared(sharers(&[0, 4, 9, 15])));
}

#[test]
fn cold_write_goes_straight_to_modified() {
    let mut dir = Directory::new(16);
    let actions = req(&mut dir, B, DirRequest::ReadExclusive { from: n(2) });
    assert_eq!(
        actions,
        [
            DirAction::ReadMemory,
            DirAction::SendData {
                to: n(2),
                exclusive: true,
                prefetch: false
            }
        ]
    );
    assert_eq!(dir.state(B), DirState::Modified(n(2)));
}

#[test]
fn write_to_shared_invalidates_all_other_sharers() {
    let mut dir = Directory::new(16);
    for i in [1u16, 2, 3] {
        req(&mut dir, B, DirRequest::read_shared(n(i)));
    }
    let actions = req(&mut dir, B, DirRequest::ReadExclusive { from: n(7) });
    assert_eq!(
        actions,
        [DirAction::Invalidate {
            targets: sharers(&[1, 2, 3])
        }]
    );
    assert!(dir.is_busy(B));

    // Two of three acks: still busy, no actions.
    assert!(inval_ack(&mut dir, B).is_empty());
    assert!(inval_ack(&mut dir, B).is_empty());
    // Final ack releases the data.
    let actions = inval_ack(&mut dir, B);
    assert_eq!(
        actions,
        [
            DirAction::ReadMemory,
            DirAction::SendData {
                to: n(7),
                exclusive: true,
                prefetch: false
            }
        ]
    );
    assert_eq!(dir.state(B), DirState::Modified(n(7)));
    assert!(!dir.is_busy(B));
}

#[test]
fn upgrade_by_sole_sharer_needs_no_data() {
    let mut dir = Directory::new(16);
    req(&mut dir, B, DirRequest::read_shared(n(4)));
    let actions = req(&mut dir, B, DirRequest::Upgrade { from: n(4) });
    assert_eq!(actions, [DirAction::SendAck { to: n(4) }]);
    assert_eq!(dir.state(B), DirState::Modified(n(4)));
}

#[test]
fn upgrade_with_other_sharers_waits_for_acks() {
    let mut dir = Directory::new(16);
    req(&mut dir, B, DirRequest::read_shared(n(4)));
    req(&mut dir, B, DirRequest::read_shared(n(5)));
    let actions = req(&mut dir, B, DirRequest::Upgrade { from: n(4) });
    assert_eq!(
        actions,
        [DirAction::Invalidate {
            targets: sharers(&[5])
        }]
    );
    let actions = inval_ack(&mut dir, B);
    assert_eq!(actions, [DirAction::SendAck { to: n(4) }]);
    assert_eq!(dir.state(B), DirState::Modified(n(4)));
}

#[test]
fn upgrade_after_losing_copy_is_served_with_data() {
    let mut dir = Directory::new(16);
    // Node 4 reads, node 9 writes (invalidating 4), then node 4's stale
    // upgrade arrives: it must receive data, not a bare ack.
    req(&mut dir, B, DirRequest::read_shared(n(4)));
    let a = req(&mut dir, B, DirRequest::ReadExclusive { from: n(9) });
    assert_eq!(
        a,
        [DirAction::Invalidate {
            targets: sharers(&[4])
        }]
    );
    inval_ack(&mut dir, B);
    assert_eq!(dir.state(B), DirState::Modified(n(9)));

    let actions = req(&mut dir, B, DirRequest::Upgrade { from: n(4) });
    // Modified at node 9: fetch-invalidate, then exclusive data to node 4.
    assert_eq!(actions, [DirAction::FetchInval { owner: n(9) }]);
    let actions = fetch_done(&mut dir, B, true);
    assert_eq!(
        actions,
        [DirAction::SendData {
            to: n(4),
            exclusive: true,
            prefetch: false
        }]
    );
    assert_eq!(dir.state(B), DirState::Modified(n(4)));
}

#[test]
fn read_of_dirty_block_fetches_from_owner() {
    let mut dir = Directory::new(16);
    req(&mut dir, B, DirRequest::ReadExclusive { from: n(1) });
    let actions = req(&mut dir, B, DirRequest::read_shared(n(6)));
    assert_eq!(actions, [DirAction::Fetch { owner: n(1) }]);
    assert!(dir.is_busy(B));

    let actions = fetch_done(&mut dir, B, true);
    assert_eq!(
        actions,
        [
            DirAction::WriteMemory,
            DirAction::SendData {
                to: n(6),
                exclusive: false,
                prefetch: false
            }
        ]
    );
    // Owner downgraded: both nodes now share.
    assert_eq!(dir.state(B), DirState::Shared(sharers(&[1, 6])));
}

#[test]
fn write_to_dirty_block_transfers_ownership() {
    let mut dir = Directory::new(16);
    req(&mut dir, B, DirRequest::ReadExclusive { from: n(1) });
    let actions = req(&mut dir, B, DirRequest::ReadExclusive { from: n(2) });
    assert_eq!(actions, [DirAction::FetchInval { owner: n(1) }]);
    let actions = fetch_done(&mut dir, B, true);
    assert_eq!(
        actions,
        [DirAction::SendData {
            to: n(2),
            exclusive: true,
            prefetch: false
        }]
    );
    assert_eq!(dir.state(B), DirState::Modified(n(2)));
}

#[test]
fn writeback_returns_block_to_memory() {
    let mut dir = Directory::new(16);
    req(&mut dir, B, DirRequest::ReadExclusive { from: n(1) });
    let actions = req(&mut dir, B, DirRequest::Writeback { from: n(1) });
    assert_eq!(actions, [DirAction::WriteMemory]);
    assert_eq!(dir.state(B), DirState::Uncached);
    assert_eq!(dir.stats().writebacks, 1);
}

#[test]
fn requests_queue_behind_inflight_transaction() {
    let mut dir = Directory::new(16);
    req(&mut dir, B, DirRequest::ReadExclusive { from: n(1) });
    // A read triggers a fetch...
    req(&mut dir, B, DirRequest::read_shared(n(2)));
    // ...and two more requests arrive while it is outstanding.
    assert!(req(&mut dir, B, DirRequest::read_shared(n(3))).is_empty());
    assert!(req(&mut dir, B, DirRequest::ReadExclusive { from: n(4) }).is_empty());

    // Completing the fetch serves node 2, then node 3 (from memory,
    // back-to-back), then starts node 4's invalidation round.
    let actions = fetch_done(&mut dir, B, true);
    let sends: Vec<_> = actions
        .iter()
        .filter_map(|a| match a {
            DirAction::SendData { to, .. } => Some(to.index()),
            _ => None,
        })
        .collect();
    assert_eq!(sends, [2, 3]);
    assert!(actions
        .iter()
        .any(|a| matches!(a, DirAction::Invalidate { targets } if targets.len() == 3)));
    assert!(dir.is_busy(B));
    for _ in 0..3 {
        inval_ack(&mut dir, B);
    }
    assert_eq!(dir.state(B), DirState::Modified(n(4)));
}

#[test]
fn writeback_racing_with_fetch_completes_from_memory() {
    let mut dir = Directory::new(16);
    req(&mut dir, B, DirRequest::ReadExclusive { from: n(1) });
    // Node 2's read starts a fetch to node 1...
    assert_eq!(
        req(&mut dir, B, DirRequest::read_shared(n(2))),
        [DirAction::Fetch { owner: n(1) }]
    );
    // ...but node 1 evicted the block; its writeback arrives first.
    let actions = req(&mut dir, B, DirRequest::Writeback { from: n(1) });
    assert_eq!(actions, [DirAction::WriteMemory]);
    // The fetch then reports no copy; memory is already current.
    let actions = fetch_done(&mut dir, B, false);
    assert_eq!(
        actions,
        [
            DirAction::ReadMemory,
            DirAction::SendData {
                to: n(2),
                exclusive: false,
                prefetch: false
            }
        ]
    );
    assert_eq!(dir.state(B), DirState::Shared(sharers(&[2])));
}

#[test]
fn fetch_miss_waits_for_late_writeback() {
    let mut dir = Directory::new(16);
    req(&mut dir, B, DirRequest::ReadExclusive { from: n(1) });
    req(&mut dir, B, DirRequest::read_shared(n(2)));
    // Fetch reports no copy *before* the writeback arrives.
    assert!(fetch_done(&mut dir, B, false).is_empty());
    assert!(dir.is_busy(B));
    // The writeback completes the stalled transaction.
    let actions = req(&mut dir, B, DirRequest::Writeback { from: n(1) });
    assert_eq!(
        actions,
        [
            DirAction::WriteMemory,
            DirAction::ReadMemory,
            DirAction::SendData {
                to: n(2),
                exclusive: false,
                prefetch: false
            }
        ]
    );
    assert_eq!(dir.state(B), DirState::Shared(sharers(&[2])));
}

#[test]
fn owner_rereading_own_written_back_block_waits_for_writeback() {
    let mut dir = Directory::new(16);
    req(&mut dir, B, DirRequest::ReadExclusive { from: n(1) });
    // Node 1 evicts the dirty block and immediately re-reads it, and the
    // read overtakes the writeback.
    assert!(req(&mut dir, B, DirRequest::read_shared(n(1))).is_empty());
    assert!(dir.is_busy(B));
    let actions = req(&mut dir, B, DirRequest::Writeback { from: n(1) });
    assert_eq!(
        actions,
        [
            DirAction::WriteMemory,
            DirAction::ReadMemory,
            DirAction::SendData {
                to: n(1),
                exclusive: false,
                prefetch: false
            }
        ]
    );
    assert_eq!(dir.state(B), DirState::Shared(sharers(&[1])));
}

#[test]
fn distinct_blocks_are_independent() {
    let mut dir = Directory::new(16);
    let b2 = BlockAddr::new(200);
    req(&mut dir, B, DirRequest::ReadExclusive { from: n(1) });
    req(&mut dir, B, DirRequest::read_shared(n(2))); // B is now busy
    let actions = req(&mut dir, b2, DirRequest::read_shared(n(3)));
    assert_eq!(actions.len(), 2, "block b2 must not queue behind B");
    assert_eq!(dir.state(b2), DirState::Shared(sharers(&[3])));
}

/// The presence vector must record sharers past node 64 (a 16×16 mesh has
/// 256 of them) and invalidate every one on a write.
#[test]
fn wide_meshes_accumulate_and_invalidate_all_sharers() {
    let mut dir = Directory::new(256);
    let readers: Vec<u16> = (0..256).step_by(17).collect(); // 0, 17, ..., 255
    for &i in &readers {
        req(&mut dir, B, DirRequest::read_shared(n(i)));
    }
    assert_eq!(dir.state(B), DirState::Shared(sharers(&readers)));

    let actions = req(&mut dir, B, DirRequest::ReadExclusive { from: n(255) });
    let others: Vec<u16> = readers.iter().copied().filter(|&i| i != 255).collect();
    assert_eq!(
        actions,
        [DirAction::Invalidate {
            targets: sharers(&others)
        }]
    );
    for _ in 0..others.len() {
        inval_ack(&mut dir, B);
    }
    assert_eq!(dir.state(B), DirState::Modified(n(255)));
    assert_eq!(dir.stats().invalidations, others.len() as u64);
}

/// A reference model: per-node cache states driven by the directory's
/// actions, checked for the single-writer/multiple-reader invariant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ModelLine {
    Invalid,
    Shared,
    Modified,
}

/// Random single-block request streams (with every transient completed
/// immediately) keep the directory consistent with a node-side model:
/// at most one Modified copy, never alongside Shared copies, and the
/// presence vector exactly matches the nodes holding copies (512 seeded
/// cases).
#[test]
fn directory_agrees_with_node_model() {
    // Applies one batch of directory actions to the node model,
    // answering fetches/invals immediately (zero-latency network).
    fn apply(dir: &mut Directory, model: &mut [ModelLine], actions: Vec<DirAction>) {
        let mut queue: std::collections::VecDeque<DirAction> = actions.into();
        while let Some(action) = queue.pop_front() {
            match action {
                DirAction::ReadMemory | DirAction::WriteMemory => {}
                DirAction::SendData { to, exclusive, .. } => {
                    model[to.index()] = if exclusive {
                        ModelLine::Modified
                    } else {
                        ModelLine::Shared
                    };
                }
                DirAction::SendAck { to } => {
                    model[to.index()] = ModelLine::Modified;
                }
                DirAction::Fetch { owner } => {
                    assert_eq!(model[owner.index()], ModelLine::Modified);
                    model[owner.index()] = ModelLine::Shared;
                    queue.extend(fetch_done(dir, B, true));
                }
                DirAction::FetchInval { owner } => {
                    assert_eq!(model[owner.index()], ModelLine::Modified);
                    model[owner.index()] = ModelLine::Invalid;
                    queue.extend(fetch_done(dir, B, true));
                }
                DirAction::Invalidate { targets } => {
                    for t in targets.iter() {
                        model[t.index()] = ModelLine::Invalid;
                        queue.extend(inval_ack(dir, B));
                    }
                }
            }
        }
    }

    let mut rng = SplitMix64::seed_from_u64(0xd14a9);
    for _case in 0..512 {
        let len = rng.random_range(1usize..300);
        let ops: Vec<(u16, u8)> = (0..len)
            .map(|_| (rng.random_range(0u16..8), rng.random_range(0u8..3)))
            .collect();
        let nodes = 8usize;
        let mut dir = Directory::new(nodes as u16);
        let mut model = vec![ModelLine::Invalid; nodes];

        for (node, kind) in ops {
            let from = NodeId::new(node);
            let line = model[from.index()];
            // Issue only requests a real SLC could issue in its current
            // state (e.g. no read miss while holding the block).
            let request = match kind {
                0 if line == ModelLine::Invalid => DirRequest::read_shared(from),
                1 if line == ModelLine::Invalid => DirRequest::ReadExclusive { from },
                2 if line == ModelLine::Shared => DirRequest::Upgrade { from },
                2 if line == ModelLine::Modified => {
                    model[from.index()] = ModelLine::Invalid;
                    DirRequest::Writeback { from }
                }
                _ => continue,
            };
            let actions = req(&mut dir, B, request);
            apply(&mut dir, &mut model, actions);
            assert!(!dir.is_busy(B), "zero-latency completion expected");

            // Invariants.
            let modified: Vec<_> = model
                .iter()
                .filter(|&&l| l == ModelLine::Modified)
                .collect();
            let shared_count = model.iter().filter(|&&l| l == ModelLine::Shared).count();
            assert!(modified.len() <= 1);
            if modified.len() == 1 {
                assert_eq!(shared_count, 0);
            }
            match dir.state(B) {
                DirState::Uncached => {
                    assert!(model.iter().all(|&l| l == ModelLine::Invalid));
                }
                DirState::Modified(owner) => {
                    assert_eq!(model[owner.index()], ModelLine::Modified);
                }
                DirState::Shared(s) => {
                    for (i, &line) in model.iter().enumerate() {
                        let in_set = s.contains(NodeId::new(i as u16));
                        // The directory may conservatively over-record
                        // (silent clean evictions), but our model has no
                        // silent evictions, so the sets must match exactly.
                        assert_eq!(
                            in_set,
                            line == ModelLine::Shared,
                            "node {i} dir={in_set:?} model={line:?}"
                        );
                    }
                }
            }
        }
    }
}
