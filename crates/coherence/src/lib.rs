//! The write-invalidate cache-coherence protocol of the baseline
//! architecture (§4): a full-map directory in the style of Censier &
//! Feautrier, one directory slice per home node.
//!
//! The [`Directory`] is a *pure protocol automaton*: it receives coherence
//! requests ([`DirRequest`]) and emits the actions the home node must
//! perform ([`DirAction`]) — read or write memory, send a data reply,
//! fetch a dirty copy from its owner, or invalidate sharers. All timing
//! (memory latency, network traversal, SLC occupancy) is applied by the
//! full-system simulator when it executes those actions, which keeps the
//! protocol independently testable.
//!
//! The protocol serializes transactions per block: while a fetch or an
//! invalidation round is outstanding, later requests for the same block
//! queue at the home and are processed in arrival order. This is how a read
//! miss comes to take zero, two, or four node-to-node traversals: memory
//! clean at the local home (0), memory clean at a remote home (2), or
//! dirty in a third node's cache (4).
//!
//! # Examples
//!
//! ```
//! use pfsim_coherence::{ActionBuf, DirAction, DirRequest, Directory};
//! use pfsim_mem::{BlockAddr, NodeId};
//!
//! let mut dir = Directory::new(16);
//! let mut actions = ActionBuf::new(); // reused across requests
//! let b = BlockAddr::new(7);
//! // Node 3 read-misses a clean block: memory responds directly.
//! dir.request(b, DirRequest::read_shared(NodeId::new(3)), &mut actions);
//! assert_eq!(
//!     actions.to_vec(),
//!     [
//!         DirAction::ReadMemory,
//!         DirAction::SendData { to: NodeId::new(3), exclusive: false, prefetch: false },
//!     ],
//! );
//! ```

#![warn(missing_docs)]

mod directory;
mod sharers;

pub use directory::{ActionBuf, DirAction, DirRequest, DirState, DirStats, Directory};
pub use sharers::{SharerSet, MAX_SHARERS};
