//! The full-map presence vector.

use std::fmt;

use pfsim_mem::NodeId;

/// A full-map presence vector: one bit per node, recording which caches
/// hold a copy of a block.
///
/// The paper's 16-node system needs 16 bits per directory entry; this
/// implementation supports up to 64 nodes.
///
/// # Examples
///
/// ```
/// use pfsim_coherence::SharerSet;
/// use pfsim_mem::NodeId;
///
/// let mut s = SharerSet::new();
/// s.insert(NodeId::new(3));
/// s.insert(NodeId::new(9));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(NodeId::new(3)));
/// s.remove(NodeId::new(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), [NodeId::new(9)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    pub fn new() -> Self {
        SharerSet(0)
    }

    /// A set containing exactly `node`.
    pub fn singleton(node: NodeId) -> Self {
        let mut s = SharerSet(0);
        s.insert(node);
        s
    }

    /// Adds `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is ≥ 64.
    pub fn insert(&mut self, node: NodeId) {
        assert!(node.index() < 64, "SharerSet supports at most 64 nodes");
        self.0 |= 1 << node.index();
    }

    /// Removes `node`, returning whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let bit = 1u64 << node.index();
        let was = self.0 & bit != 0;
        self.0 &= !bit;
        was
    }

    /// Whether `node` is in the set.
    pub fn contains(self, node: NodeId) -> bool {
        node.index() < 64 && self.0 & (1 << node.index()) != 0
    }

    /// Number of sharers.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The set with `node` removed (non-mutating).
    pub fn without(mut self, node: NodeId) -> SharerSet {
        self.remove(node);
        self
    }

    /// Iterates the members in ascending node order.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros();
                bits &= bits - 1;
                Some(NodeId::new(i as u16))
            }
        })
    }
}

impl FromIterator<NodeId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = SharerSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|n| n.index()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_mem::SplitMix64;

    #[test]
    fn insert_remove_contains() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        s.insert(NodeId::new(0));
        s.insert(NodeId::new(15));
        assert!(s.contains(NodeId::new(0)));
        assert!(s.contains(NodeId::new(15)));
        assert!(!s.contains(NodeId::new(7)));
        assert!(s.remove(NodeId::new(0)));
        assert!(!s.remove(NodeId::new(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s: SharerSet = [5u16, 1, 12].into_iter().map(NodeId::new).collect();
        let got: Vec<_> = s.iter().map(|n| n.index()).collect();
        assert_eq!(got, [1, 5, 12]);
    }

    #[test]
    fn without_is_nonmutating() {
        let s = SharerSet::singleton(NodeId::new(4));
        let t = s.without(NodeId::new(4));
        assert!(s.contains(NodeId::new(4)));
        assert!(t.is_empty());
    }

    #[test]
    fn debug_lists_members() {
        let s: SharerSet = [2u16, 3].into_iter().map(NodeId::new).collect();
        assert_eq!(format!("{s:?}"), "{2, 3}");
    }

    /// The bit-set agrees with an ordered-set reference model (seeded
    /// cases).
    #[test]
    fn matches_hashset_model() {
        let mut rng = SplitMix64::seed_from_u64(0x5a4e25);
        for _case in 0..64 {
            let len = rng.random_range(0usize..100);
            let mut s = SharerSet::new();
            let mut model = std::collections::BTreeSet::new();
            for _ in 0..len {
                let node = rng.random_range(0u16..64);
                if rng.random_bool() {
                    s.insert(NodeId::new(node));
                    model.insert(node);
                } else {
                    s.remove(NodeId::new(node));
                    model.remove(&node);
                }
            }
            assert_eq!(s.len() as usize, model.len());
            let got: Vec<_> = s.iter().map(|n| n.as_u16()).collect();
            let want: Vec<_> = model.into_iter().collect();
            assert_eq!(got, want);
        }
    }
}
