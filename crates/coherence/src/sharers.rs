//! The full-map presence vector.

use std::fmt;
use std::hash::{Hash, Hasher};

use pfsim_mem::NodeId;

/// Number of 64-bit words in the wide representation.
const WIDE_WORDS: usize = 4;

/// Largest node index a [`SharerSet`] can record, plus one.
pub const MAX_SHARERS: usize = WIDE_WORDS * 64;

/// A full-map presence vector: one bit per node, recording which caches
/// hold a copy of a block.
///
/// The paper's 16-node system needs 16 bits per directory entry; this
/// implementation supports up to [`MAX_SHARERS`] (256) nodes. Sets whose
/// members all fit in the low 64 node indices — every set on meshes up to
/// 8×8 — are stored inline in a single word; inserting a node ≥ 64
/// promotes the set to a boxed 256-bit vector. Equality and hashing are
/// representation-independent, so a promoted set that shrinks back into
/// the low word still compares equal to an inline one.
///
/// # Examples
///
/// ```
/// use pfsim_coherence::SharerSet;
/// use pfsim_mem::NodeId;
///
/// let mut s = SharerSet::new();
/// s.insert(NodeId::new(3));
/// s.insert(NodeId::new(9));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(NodeId::new(3)));
/// s.remove(NodeId::new(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), [NodeId::new(9)]);
/// ```
#[derive(Clone, Default)]
pub struct SharerSet(Repr);

#[derive(Clone)]
enum Repr {
    /// All members < 64: a single word, no allocation.
    Inline(u64),
    /// At least one member ≥ 64 was inserted: full 256-bit map.
    Wide(Box<[u64; WIDE_WORDS]>),
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Inline(0)
    }
}

impl SharerSet {
    /// The empty set.
    pub fn new() -> Self {
        SharerSet(Repr::Inline(0))
    }

    /// A set containing exactly `node`.
    pub fn singleton(node: NodeId) -> Self {
        let mut s = SharerSet::new();
        s.insert(node);
        s
    }

    /// The set as a normalized word array (inline sets zero-extend).
    fn words(&self) -> [u64; WIDE_WORDS] {
        match &self.0 {
            Repr::Inline(w) => {
                let mut words = [0u64; WIDE_WORDS];
                words[0] = *w;
                words
            }
            Repr::Wide(words) => **words,
        }
    }

    /// Adds `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is ≥ [`MAX_SHARERS`].
    pub fn insert(&mut self, node: NodeId) {
        let idx = node.index();
        assert!(
            idx < MAX_SHARERS,
            "SharerSet supports at most {MAX_SHARERS} nodes"
        );
        match &mut self.0 {
            Repr::Inline(w) if idx < 64 => *w |= 1 << idx,
            Repr::Inline(w) => {
                let mut words = Box::new([0u64; WIDE_WORDS]);
                words[0] = *w;
                words[idx / 64] |= 1 << (idx % 64);
                self.0 = Repr::Wide(words);
            }
            Repr::Wide(words) => words[idx / 64] |= 1 << (idx % 64),
        }
    }

    /// Removes `node`, returning whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let idx = node.index();
        match &mut self.0 {
            Repr::Inline(w) => {
                if idx >= 64 {
                    return false;
                }
                let bit = 1u64 << idx;
                let was = *w & bit != 0;
                *w &= !bit;
                was
            }
            Repr::Wide(words) => {
                if idx >= MAX_SHARERS {
                    return false;
                }
                let bit = 1u64 << (idx % 64);
                let was = words[idx / 64] & bit != 0;
                words[idx / 64] &= !bit;
                was
            }
        }
    }

    /// Whether `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        let idx = node.index();
        match &self.0 {
            Repr::Inline(w) => idx < 64 && w & (1 << idx) != 0,
            Repr::Wide(words) => idx < MAX_SHARERS && words[idx / 64] & (1 << (idx % 64)) != 0,
        }
    }

    /// Number of sharers.
    pub fn len(&self) -> u32 {
        match &self.0 {
            Repr::Inline(w) => w.count_ones(),
            Repr::Wide(words) => words.iter().map(|w| w.count_ones()).sum(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        match &self.0 {
            Repr::Inline(w) => *w == 0,
            Repr::Wide(words) => words.iter().all(|w| *w == 0),
        }
    }

    /// The set with `node` removed (non-mutating).
    pub fn without(&self, node: NodeId) -> SharerSet {
        let mut s = self.clone();
        s.remove(node);
        s
    }

    /// Iterates the members in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> {
        let mut words = self.words();
        let mut word = 0usize;
        std::iter::from_fn(move || loop {
            if word >= WIDE_WORDS {
                return None;
            }
            if words[word] == 0 {
                word += 1;
                continue;
            }
            let i = words[word].trailing_zeros();
            words[word] &= words[word] - 1;
            return Some(NodeId::new((word * 64) as u16 + i as u16));
        })
    }
}

impl PartialEq for SharerSet {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (Repr::Inline(a), Repr::Inline(b)) => a == b,
            _ => self.words() == other.words(),
        }
    }
}

impl Eq for SharerSet {}

impl Hash for SharerSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the normalized words so inline and wide sets with the same
        // members hash identically.
        self.words().hash(state);
    }
}

impl FromIterator<NodeId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = SharerSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|n| n.index()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfsim_mem::SplitMix64;

    #[test]
    fn insert_remove_contains() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        s.insert(NodeId::new(0));
        s.insert(NodeId::new(15));
        assert!(s.contains(NodeId::new(0)));
        assert!(s.contains(NodeId::new(15)));
        assert!(!s.contains(NodeId::new(7)));
        assert!(s.remove(NodeId::new(0)));
        assert!(!s.remove(NodeId::new(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s: SharerSet = [5u16, 1, 12].into_iter().map(NodeId::new).collect();
        let got: Vec<_> = s.iter().map(|n| n.index()).collect();
        assert_eq!(got, [1, 5, 12]);
    }

    #[test]
    fn without_is_nonmutating() {
        let s = SharerSet::singleton(NodeId::new(4));
        let t = s.without(NodeId::new(4));
        assert!(s.contains(NodeId::new(4)));
        assert!(t.is_empty());
    }

    #[test]
    fn debug_lists_members() {
        let s: SharerSet = [2u16, 3].into_iter().map(NodeId::new).collect();
        assert_eq!(format!("{s:?}"), "{2, 3}");
    }

    #[test]
    fn promotes_past_64_nodes() {
        let mut s = SharerSet::new();
        s.insert(NodeId::new(63));
        s.insert(NodeId::new(64));
        s.insert(NodeId::new(255));
        assert_eq!(s.len(), 3);
        assert!(s.contains(NodeId::new(63)));
        assert!(s.contains(NodeId::new(64)));
        assert!(s.contains(NodeId::new(255)));
        assert!(!s.contains(NodeId::new(254)));
        let got: Vec<_> = s.iter().map(|n| n.index()).collect();
        assert_eq!(got, [63, 64, 255]);
    }

    /// A promoted set whose high-word members are all removed compares
    /// equal to (and hashes like) an inline set with the same members.
    #[test]
    fn wide_and_inline_are_interchangeable() {
        use std::collections::hash_map::DefaultHasher;

        let mut wide = SharerSet::singleton(NodeId::new(7));
        wide.insert(NodeId::new(200));
        assert!(wide.remove(NodeId::new(200)));
        let inline = SharerSet::singleton(NodeId::new(7));
        assert_eq!(wide, inline);

        let hash = |s: &SharerSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&wide), hash(&inline));
    }

    #[test]
    #[should_panic(expected = "at most 256 nodes")]
    fn insert_past_max_panics() {
        SharerSet::new().insert(NodeId::new(256));
    }

    /// The bit-set agrees with an ordered-set reference model (seeded
    /// cases), now over the full 256-node range so both representations
    /// and the promotion boundary are exercised.
    #[test]
    fn matches_hashset_model() {
        let mut rng = SplitMix64::seed_from_u64(0x5a4e25);
        for _case in 0..64 {
            let len = rng.random_range(0usize..100);
            let mut s = SharerSet::new();
            let mut model = std::collections::BTreeSet::new();
            for _ in 0..len {
                let node = rng.random_range(0u16..MAX_SHARERS as u16);
                if rng.random_bool() {
                    s.insert(NodeId::new(node));
                    model.insert(node);
                } else {
                    s.remove(NodeId::new(node));
                    model.remove(&node);
                }
            }
            assert_eq!(s.len() as usize, model.len());
            let got: Vec<_> = s.iter().map(|n| n.as_u16()).collect();
            let want: Vec<_> = model.into_iter().collect();
            assert_eq!(got, want);
        }
    }
}
