//! The full-map directory automaton.

use std::collections::VecDeque;

use pfsim_mem::{BlockAddr, NodeId, PagedMap};

use crate::SharerSet;

/// A coherence request arriving at a block's home node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirRequest {
    /// Read miss (or prefetch): the requester wants a shared copy.
    ReadShared {
        /// Requesting node.
        from: NodeId,
        /// Whether this is a prefetch (propagated into the data reply so
        /// the requester tags the block).
        prefetch: bool,
    },
    /// Write miss: the requester wants an exclusive copy with data.
    ReadExclusive {
        /// Requesting node.
        from: NodeId,
    },
    /// Write hit on a shared copy: the requester wants ownership without
    /// data.
    Upgrade {
        /// Requesting node.
        from: NodeId,
    },
    /// Replacement of a dirty block: the data returns to memory.
    Writeback {
        /// Evicting node.
        from: NodeId,
    },
}

impl DirRequest {
    /// A demand read-shared request.
    pub fn read_shared(from: NodeId) -> Self {
        DirRequest::ReadShared {
            from,
            prefetch: false,
        }
    }

    /// A prefetch read-shared request.
    pub fn prefetch(from: NodeId) -> Self {
        DirRequest::ReadShared {
            from,
            prefetch: true,
        }
    }

    /// The node that issued the request.
    pub fn from(self) -> NodeId {
        match self {
            DirRequest::ReadShared { from, .. }
            | DirRequest::ReadExclusive { from }
            | DirRequest::Upgrade { from }
            | DirRequest::Writeback { from } => from,
        }
    }
}

/// An action the home node must perform on behalf of the protocol.
///
/// Actions are returned in execution order; in particular `ReadMemory`
/// before a `SendData` means the reply carries data read from local memory
/// (the executor inserts the memory latency between them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirAction {
    /// Read the block from this node's local memory.
    ReadMemory,
    /// Write the block back to this node's local memory.
    WriteMemory,
    /// Send a data reply to `to`.
    SendData {
        /// Destination node.
        to: NodeId,
        /// Whether ownership (write permission) is granted.
        exclusive: bool,
        /// Whether the original request was a prefetch.
        prefetch: bool,
    },
    /// Grant ownership without data (upgrade acknowledgement).
    SendAck {
        /// Destination node.
        to: NodeId,
    },
    /// Ask `owner` for its dirty copy, downgrading it to Shared.
    Fetch {
        /// Current owner.
        owner: NodeId,
    },
    /// Ask `owner` for its dirty copy and invalidate it.
    FetchInval {
        /// Current owner.
        owner: NodeId,
    },
    /// Send invalidations to every node in `targets`; each will be
    /// acknowledged via [`Directory::inval_ack`].
    Invalidate {
        /// Nodes holding copies that must be invalidated.
        targets: SharerSet,
    },
}

/// A reusable, mostly-inline buffer of [`DirAction`]s.
///
/// The directory sits on the simulator's hot path: every coherence message
/// produces a handful of actions, and allocating a fresh `Vec` per message
/// dominated the protocol cost. Callers own one `ActionBuf`, pass it to
/// [`Directory::request`] / [`Directory::fetch_done`] /
/// [`Directory::inval_ack`], and [`clear`](Self::clear) it between uses —
/// after warm-up no protocol operation allocates.
///
/// The first [`ActionBuf::INLINE`] actions live inline; a transaction only
/// spills to the heap-backed tail when a completed fetch drains a long
/// pending queue (rare, and the spill capacity is then reused too).
#[derive(Debug, Clone)]
pub struct ActionBuf {
    inline: [DirAction; Self::INLINE],
    len: usize,
    spill: Vec<DirAction>,
}

impl ActionBuf {
    /// Actions stored without touching the heap.
    pub const INLINE: usize = 8;

    /// Creates an empty buffer.
    pub fn new() -> Self {
        ActionBuf {
            // Placeholder values; only `inline[..len.min(INLINE)]` is live.
            inline: std::array::from_fn(|_| DirAction::ReadMemory),
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Empties the buffer, retaining any spill capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// Appends an action.
    pub fn push(&mut self, action: DirAction) {
        if self.len < Self::INLINE {
            self.inline[self.len] = action;
        } else {
            self.spill.push(action);
        }
        self.len += 1;
    }

    /// Number of buffered actions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no actions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the actions in push order.
    pub fn iter(&self) -> impl Iterator<Item = &DirAction> + '_ {
        self.inline[..self.len.min(Self::INLINE)]
            .iter()
            .chain(self.spill.iter())
    }

    /// Copies the actions into a `Vec` (test and debugging convenience).
    pub fn to_vec(&self) -> Vec<DirAction> {
        self.iter().cloned().collect()
    }
}

impl Default for ActionBuf {
    fn default() -> Self {
        Self::new()
    }
}

/// Stable directory state of one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No cached copies; memory is current.
    Uncached,
    /// Read-only copies at the recorded nodes; memory is current.
    Shared(SharerSet),
    /// One dirty copy at the recorded owner; memory is stale.
    Modified(NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiting {
    /// A (possibly invalidating) fetch to the owner is outstanding.
    Fetch { owner: NodeId },
    /// Invalidations are outstanding; `remaining` acks are due.
    Acks { remaining: u32 },
    /// The owner's copy is gone; its writeback is in flight and must arrive
    /// before the transaction can complete from memory.
    WritebackData,
}

#[derive(Debug, Clone)]
struct Txn {
    request: DirRequest,
    waiting: Waiting,
    /// Set when a racing writeback for this block arrived while the fetch
    /// was outstanding.
    wb_arrived: bool,
}

/// The busy side of an entry: the in-flight transaction plus any requests
/// queued behind it.
///
/// Boxed out of [`Entry`] so the overwhelmingly common idle entry stays
/// small (the entry table is probed on every coherence message, and idle
/// probes dominate), and recycled through `Directory::spare` so
/// steady-state traffic never allocates.
#[derive(Debug, Clone)]
struct Busy {
    /// The in-flight transaction. `None` only transiently while the
    /// pending queue drains; a `Busy` box is retired as soon as it has
    /// neither a transaction nor queued requests.
    txn: Option<Txn>,
    /// Requests queued behind the transaction, in arrival order.
    pending: VecDeque<DirRequest>,
}

#[derive(Debug, Clone)]
struct Entry {
    state: DirState,
    busy: Option<Box<Busy>>,
}

impl Entry {
    fn new() -> Self {
        Entry {
            state: DirState::Uncached,
            busy: None,
        }
    }
}

/// Counters kept by the directory (protocol-level statistics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Transactions that were satisfied directly from memory.
    pub memory_supplied: u64,
    /// Transactions that required a fetch from a remote owner.
    pub owner_supplied: u64,
    /// Invalidation messages requested.
    pub invalidations: u64,
    /// Writebacks absorbed.
    pub writebacks: u64,
    /// Stale writebacks ignored (should stay zero in a correct system).
    pub stale_writebacks: u64,
}

/// One home node's slice of the full-map directory.
///
/// See the [crate documentation](crate) for the protocol overview and an
/// example.
#[derive(Debug, Clone)]
pub struct Directory {
    entries: PagedMap<Entry>,
    nodes: u16,
    stats: DirStats,
    /// Retired [`Busy`] boxes awaiting reuse (bounded; see `SPARE_CAP`).
    /// Deliberately `Box`ed: the pool hands the same allocations back to
    /// [`Entry::busy`], so engaging an entry in steady state never touches
    /// the allocator.
    #[allow(clippy::vec_box)]
    spare: Vec<Box<Busy>>,
}

/// Upper bound on recycled `Busy` boxes kept per directory slice.
const SPARE_CAP: usize = 64;

impl Directory {
    /// Creates a directory slice for a system of `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds the presence-vector limit
    /// ([`crate::MAX_SHARERS`]).
    pub fn new(nodes: u16) -> Self {
        assert!(
            (1..=crate::MAX_SHARERS as u16).contains(&nodes),
            "nodes must be in 1..={}",
            crate::MAX_SHARERS
        );
        Directory {
            entries: PagedMap::new(),
            nodes,
            stats: DirStats::default(),
            spare: Vec::new(),
        }
    }

    /// Protocol statistics so far.
    pub fn stats(&self) -> DirStats {
        self.stats
    }

    /// The stable state of `block` (Uncached if never referenced).
    pub fn state(&self, block: BlockAddr) -> DirState {
        self.entries
            .get(block.as_u64())
            .map(|e| e.state.clone())
            .unwrap_or(DirState::Uncached)
    }

    /// Whether a transaction for `block` is in flight at the home.
    pub fn is_busy(&self, block: BlockAddr) -> bool {
        self.entries
            .get(block.as_u64())
            .is_some_and(|e| e.busy.is_some())
    }

    /// Debug description of the in-flight transaction for `block`, if any
    /// (used in deadlock diagnostics).
    pub fn busy_detail(&self, block: BlockAddr) -> Option<String> {
        let entry = self.entries.get(block.as_u64())?;
        let busy = entry.busy.as_ref()?;
        let txn = busy.txn.as_ref()?;
        Some(format!(
            "request {:?} waiting {:?} wb_arrived={} pending={}",
            txn.request,
            txn.waiting,
            txn.wb_arrived,
            busy.pending.len()
        ))
    }

    /// Iterates the stable states of all blocks this home has seen
    /// (for coherence audits in tests).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, DirState)> + '_ {
        self.entries
            .iter()
            .map(|(b, e)| (BlockAddr::new(b), e.state.clone()))
    }

    /// Presents `request` to the home node.
    ///
    /// Appends the actions to execute now onto `actions` (which the caller
    /// owns and reuses across calls; see [`ActionBuf`]). Appending nothing
    /// means the request was queued behind an in-flight transaction for the
    /// same block (or, for a racing writeback, absorbed into it).
    pub fn request(&mut self, block: BlockAddr, request: DirRequest, actions: &mut ActionBuf) {
        let Directory {
            entries,
            stats,
            spare,
            ..
        } = self;
        let entry = entries.get_or_insert_with(block.as_u64(), Entry::new);

        if entry.busy.is_some() {
            if let DirRequest::Writeback { from } = request {
                Self::writeback_during_txn(stats, entry, from, actions);
                Self::retire_if_idle(spare, &mut entry.busy);
            } else {
                entry
                    .busy
                    .as_mut()
                    // pfsim-lint: allow(K002) -- busy-ness established by the branch condition above
                    .expect("checked")
                    .pending
                    .push_back(request);
            }
            return;
        }

        if let Some(txn) = Self::start(stats, &mut entry.state, request, actions) {
            Self::engage(spare, entry, txn);
        }
    }

    /// Delivers the owner's reply to a `Fetch`/`FetchInval` action,
    /// appending the resulting actions onto `actions`.
    ///
    /// `had_copy` is `false` when the owner no longer held the block (its
    /// writeback is in flight); the transaction then completes once that
    /// writeback arrives.
    ///
    /// # Panics
    ///
    /// Panics if no fetch is outstanding for `block`.
    pub fn fetch_done(&mut self, block: BlockAddr, had_copy: bool, actions: &mut ActionBuf) {
        let Directory {
            entries,
            stats,
            spare,
            ..
        } = self;
        let entry = entries
            .get_mut(block.as_u64())
            // pfsim-lint: allow(K002) -- protocol trap: fetch_done always names a tracked block
            .expect("fetch_done for unknown block");
        let Entry { state, busy } = entry;
        // pfsim-lint: allow(K002) -- protocol trap: fetch_done only arrives while a transaction is open
        let b = busy.as_mut().expect("fetch_done with no transaction");
        // pfsim-lint: allow(K002) -- protocol trap: fetch_done only arrives while a transaction is open
        let txn = b.txn.as_mut().expect("fetch_done with no transaction");
        assert!(
            matches!(txn.waiting, Waiting::Fetch { .. }),
            "fetch_done while waiting for {:?}",
            txn.waiting
        );

        if had_copy {
            let request = txn.request;
            match request {
                DirRequest::ReadShared { from, prefetch } => {
                    let owner = match txn.waiting {
                        Waiting::Fetch { owner } => owner,
                        _ => unreachable!(),
                    };
                    let mut sharers = SharerSet::singleton(owner);
                    sharers.insert(from);
                    *state = DirState::Shared(sharers);
                    // The dirty data goes both to memory and to the
                    // requester.
                    actions.push(DirAction::WriteMemory);
                    actions.push(DirAction::SendData {
                        to: from,
                        exclusive: false,
                        prefetch,
                    });
                }
                DirRequest::ReadExclusive { from } | DirRequest::Upgrade { from } => {
                    *state = DirState::Modified(from);
                    actions.push(DirAction::SendData {
                        to: from,
                        exclusive: true,
                        prefetch: false,
                    });
                }
                DirRequest::Writeback { .. } => unreachable!("writebacks never fetch"),
            }
            stats.owner_supplied += 1;
            b.txn = None;
            Self::drain_pending(stats, state, b, actions);
            Self::retire_if_idle(spare, busy);
        } else if txn.wb_arrived {
            // The racing writeback already refreshed memory.
            let request = txn.request;
            b.txn = None;
            Self::complete_from_memory(stats, state, request, actions);
            Self::drain_pending(stats, state, b, actions);
            Self::retire_if_idle(spare, busy);
        } else {
            txn.waiting = Waiting::WritebackData;
        }
    }

    /// Delivers one invalidation acknowledgement for `block`, appending the
    /// resulting actions onto `actions`.
    ///
    /// # Panics
    ///
    /// Panics if no invalidation round is outstanding for `block`.
    pub fn inval_ack(&mut self, block: BlockAddr, actions: &mut ActionBuf) {
        let Directory {
            entries,
            stats,
            spare,
            ..
        } = self;
        let entry = entries
            .get_mut(block.as_u64())
            // pfsim-lint: allow(K002) -- protocol trap: inval_ack always names a tracked block
            .expect("inval_ack for unknown block");
        let Entry { state, busy } = entry;
        // pfsim-lint: allow(K002) -- protocol trap: inval_ack only arrives while a transaction is open
        let b = busy.as_mut().expect("inval_ack with no transaction");
        // pfsim-lint: allow(K002) -- protocol trap: inval_ack only arrives while a transaction is open
        let txn = b.txn.as_mut().expect("inval_ack with no transaction");
        let Waiting::Acks { remaining } = &mut txn.waiting else {
            // pfsim-lint: allow(K002) -- protocol trap: a stray ack means the directory state machine is corrupt
            panic!("inval_ack while waiting for {:?}", txn.waiting);
        };
        *remaining -= 1;
        if *remaining > 0 {
            return;
        }

        let request = txn.request;
        b.txn = None;
        match request {
            DirRequest::ReadExclusive { from } => {
                *state = DirState::Modified(from);
                actions.push(DirAction::ReadMemory);
                actions.push(DirAction::SendData {
                    to: from,
                    exclusive: true,
                    prefetch: false,
                });
                stats.memory_supplied += 1;
            }
            DirRequest::Upgrade { from } => {
                *state = DirState::Modified(from);
                actions.push(DirAction::SendAck { to: from });
            }
            DirRequest::ReadShared { .. } | DirRequest::Writeback { .. } => {
                unreachable!("only ownership requests wait for acks")
            }
        }
        Self::drain_pending(stats, state, b, actions);
        Self::retire_if_idle(spare, busy);
    }

    /// Starts `request` on an idle entry, appending actions. Returns the
    /// transaction to install if the request could not complete at once.
    fn start(
        stats: &mut DirStats,
        state: &mut DirState,
        request: DirRequest,
        actions: &mut ActionBuf,
    ) -> Option<Txn> {
        // An upgrade whose requester no longer appears in the presence
        // vector lost its copy to a racing invalidation or replacement: it
        // needs data, i.e. it *is* a read-exclusive.
        let request = match request {
            DirRequest::Upgrade { from } => {
                let has_copy = matches!(&*state, DirState::Shared(s) if s.contains(from));
                if has_copy {
                    request
                } else {
                    DirRequest::ReadExclusive { from }
                }
            }
            other => other,
        };
        match request {
            DirRequest::ReadShared { from, prefetch: _ } => match &*state {
                DirState::Uncached | DirState::Shared(_) => {
                    Self::complete_from_memory(stats, state, request, actions);
                    None
                }
                &DirState::Modified(owner) if owner != from => {
                    actions.push(DirAction::Fetch { owner });
                    Some(Txn {
                        request,
                        waiting: Waiting::Fetch { owner },
                        wb_arrived: false,
                    })
                }
                DirState::Modified(_) => {
                    // The requester is the recorded owner: it must have
                    // evicted the block; its writeback is in flight.
                    Some(Txn {
                        request,
                        waiting: Waiting::WritebackData,
                        wb_arrived: false,
                    })
                }
            },
            DirRequest::ReadExclusive { from } | DirRequest::Upgrade { from } => {
                match &*state {
                    DirState::Uncached => {
                        Self::complete_from_memory(stats, state, request, actions);
                        None
                    }
                    DirState::Shared(sharers) => {
                        let others = sharers.without(from);
                        if others.is_empty() {
                            if matches!(request, DirRequest::Upgrade { .. })
                                && sharers.contains(from)
                            {
                                // Sole sharer upgrading: ownership granted
                                // without data.
                                *state = DirState::Modified(from);
                                actions.push(DirAction::SendAck { to: from });
                            } else {
                                Self::complete_from_memory(stats, state, request, actions);
                            }
                            None
                        } else {
                            let remaining = others.len();
                            stats.invalidations += u64::from(remaining);
                            actions.push(DirAction::Invalidate { targets: others });
                            Some(Txn {
                                request,
                                waiting: Waiting::Acks { remaining },
                                wb_arrived: false,
                            })
                        }
                    }
                    &DirState::Modified(owner) if owner != from => {
                        actions.push(DirAction::FetchInval { owner });
                        Some(Txn {
                            request,
                            waiting: Waiting::Fetch { owner },
                            wb_arrived: false,
                        })
                    }
                    DirState::Modified(_) => Some(Txn {
                        request,
                        waiting: Waiting::WritebackData,
                        wb_arrived: false,
                    }),
                }
            }
            DirRequest::Writeback { from } => {
                if *state == DirState::Modified(from) {
                    *state = DirState::Uncached;
                    stats.writebacks += 1;
                    actions.push(DirAction::WriteMemory);
                } else {
                    // A writeback for a block this directory no longer
                    // records as owned by the sender: stale (the protocol
                    // should never produce one).
                    debug_assert!(false, "stale writeback from {from:?}");
                    stats.stale_writebacks += 1;
                }
                None
            }
        }
    }

    /// Handles a writeback arriving while a transaction is in flight.
    fn writeback_during_txn(
        stats: &mut DirStats,
        entry: &mut Entry,
        from: NodeId,
        actions: &mut ActionBuf,
    ) {
        stats.writebacks += 1;
        let Entry { state, busy } = entry;
        // pfsim-lint: allow(K002) -- caller dispatches here only for busy entries
        let b = busy.as_mut().expect("busy entry has a txn");
        // pfsim-lint: allow(K002) -- caller dispatches here only for busy entries
        let txn = b.txn.as_mut().expect("busy entry has a txn");
        match txn.waiting {
            Waiting::Fetch { owner } if owner == from => {
                // The fetch will find no copy; remember that memory is now
                // current.
                actions.push(DirAction::WriteMemory);
                txn.wb_arrived = true;
            }
            Waiting::WritebackData => {
                // This is the writeback the transaction was waiting for.
                actions.push(DirAction::WriteMemory);
                let request = txn.request;
                b.txn = None;
                Self::complete_from_memory(stats, state, request, actions);
                Self::drain_pending(stats, state, b, actions);
            }
            _ => {
                debug_assert!(
                    false,
                    "unexpected writeback from {from:?} while {:?}",
                    txn.waiting
                );
                stats.stale_writebacks += 1;
            }
        }
    }

    /// Completes `request` with memory as the data source, updating state.
    fn complete_from_memory(
        stats: &mut DirStats,
        state: &mut DirState,
        request: DirRequest,
        actions: &mut ActionBuf,
    ) {
        stats.memory_supplied += 1;
        match request {
            DirRequest::ReadShared { from, prefetch } => {
                // Take the existing sharer set (if any) rather than clone
                // it: a wide set would otherwise allocate on every hit.
                let mut sharers = match std::mem::replace(state, DirState::Uncached) {
                    DirState::Shared(s) => s,
                    _ => SharerSet::new(),
                };
                sharers.insert(from);
                *state = DirState::Shared(sharers);
                actions.push(DirAction::ReadMemory);
                actions.push(DirAction::SendData {
                    to: from,
                    exclusive: false,
                    prefetch,
                });
            }
            DirRequest::ReadExclusive { from } | DirRequest::Upgrade { from } => {
                // An upgrade that reaches here lost its copy to a racing
                // invalidation (or the block returned to memory): it is
                // served as a full exclusive read, data included.
                *state = DirState::Modified(from);
                actions.push(DirAction::ReadMemory);
                actions.push(DirAction::SendData {
                    to: from,
                    exclusive: true,
                    prefetch: false,
                });
            }
            DirRequest::Writeback { .. } => unreachable!("writebacks complete in start()"),
        }
    }

    /// After a transaction completes, starts as many queued requests as can
    /// run back to back.
    fn drain_pending(
        stats: &mut DirStats,
        state: &mut DirState,
        b: &mut Busy,
        actions: &mut ActionBuf,
    ) {
        while b.txn.is_none() {
            let Some(next) = b.pending.pop_front() else {
                break;
            };
            b.txn = Self::start(stats, state, next, actions);
        }
    }

    /// Installs `txn` on an idle entry, reusing a retired `Busy` box when
    /// one is available.
    #[allow(clippy::vec_box)]
    fn engage(spare: &mut Vec<Box<Busy>>, entry: &mut Entry, txn: Txn) {
        debug_assert!(entry.busy.is_none());
        let busy = match spare.pop() {
            Some(mut b) => {
                debug_assert!(b.pending.is_empty());
                b.txn = Some(txn);
                b
            }
            None => Box::new(Busy {
                txn: Some(txn),
                pending: VecDeque::new(),
            }),
        };
        entry.busy = Some(busy);
    }

    /// Returns an entry's `Busy` box to the spare pool once it holds
    /// neither a transaction nor queued requests.
    #[allow(clippy::vec_box)]
    fn retire_if_idle(spare: &mut Vec<Box<Busy>>, busy: &mut Option<Box<Busy>>) {
        if busy.as_ref().is_some_and(|b| b.txn.is_none()) {
            // pfsim-lint: allow(K002) -- is_some_and on the line above checked the txn is gone
            let b = busy.take().expect("checked");
            debug_assert!(b.pending.is_empty(), "drained entry still has requests");
            if spare.len() < SPARE_CAP {
                spare.push(b);
            }
        }
    }

    /// Number of nodes in the system.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }
}
