//! Reproduction of Dahlgren & Stenström, *"Effectiveness of Hardware-Based
//! Stride and Sequential Prefetching in Shared-Memory Multiprocessors"*
//! (HPCA 1995).
//!
//! This umbrella crate re-exports the whole simulator stack so examples and
//! integration tests can use one import. The interesting entry points are:
//!
//! * [`pfsim`] — the full-system CC-NUMA simulator ([`pfsim::System`],
//!   [`pfsim::SystemConfig`]);
//! * [`pfsim_prefetch`] — the three prefetching schemes under study;
//! * [`pfsim_workloads`] — the six application models;
//! * [`pfsim_analysis`] — the §5.1 stride-sequence characterization and the
//!   Figure-6 metrics.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory.

#![warn(missing_docs)]

pub use pfsim;
pub use pfsim_analysis;
pub use pfsim_cache;
pub use pfsim_coherence;
pub use pfsim_engine;
pub use pfsim_mem;
pub use pfsim_network;
pub use pfsim_prefetch;
pub use pfsim_workloads;
