//! Writing your own workload: the public API for building reference
//! streams and evaluating how the prefetching schemes handle them.
//!
//! This example models a producer/consumer pipeline over a ring buffer —
//! a pattern none of the paper's six applications covers — and asks which
//! scheme copes best.
//!
//! Run with: `cargo run --example custom_workload --release`

use prefetch_repro::pfsim::RecordMisses;
use prefetch_repro::pfsim::{System, SystemConfig};
use prefetch_repro::pfsim_analysis::characterize;
use prefetch_repro::pfsim_prefetch::Scheme;
use prefetch_repro::pfsim_workloads::{TraceBuilder, TraceWorkload};

/// CPU 0 produces 64-byte records into a ring buffer; CPUs 1..4 consume
/// interleaved records (consumer c takes records c-1, c-1+3, ...). Each
/// consumer therefore sees a stride-6-block sequence; the producer writes
/// sequentially.
fn pipeline(records: u64) -> TraceWorkload {
    const RECORD: u64 = 64; // 2 blocks
    let consumers = 3u64;
    let mut b = TraceBuilder::new("ring-pipeline", 16);
    let ring = b.alloc("ring", records, RECORD);
    let flag = b.alloc("flags", records, 8);
    let pc_w = b.pc_site();
    let pc_flag_w = b.pc_site();
    let pc_r0 = b.pc_site();
    let pc_r1 = b.pc_site();
    let pc_flag_r = b.pc_site();

    // Producer fills the ring in batches, then a barrier hands it over.
    for i in 0..records {
        b.write(0, b.element(ring, RECORD, i), pc_w);
        b.write(0, b.field(ring, RECORD, i, 32), pc_w);
        b.compute(0, 6);
        b.write(0, b.element(flag, 8, i), pc_flag_w);
    }
    b.barrier_all();
    for c in 0..consumers {
        let cpu = (c + 1) as usize;
        let mut i = c;
        while i < records {
            b.read(cpu, b.element(flag, 8, i), pc_flag_r);
            b.read(cpu, b.element(ring, RECORD, i), pc_r0);
            b.read(cpu, b.field(ring, RECORD, i, 32), pc_r1);
            b.compute(cpu, 20);
            i += consumers;
        }
    }
    b.finish()
}

fn main() {
    // First: characterize the consumers' miss stream the way §5.1 would.
    let mut sys = System::new(
        SystemConfig::paper_baseline().with_recording(RecordMisses::Cpu(1)),
        pipeline(512),
    );
    let base = sys.run();
    let ch = characterize(base.miss_events(1));
    println!("consumer 1 characterization (the paper's Table 2 metrics):");
    println!(
        "  {:.0}% of misses in stride sequences, avg length {:.1}, dominant stride {}",
        ch.stride_fraction() * 100.0,
        ch.avg_sequence_length(),
        ch.dominant_strides_label(),
    );
    println!();

    // Then: which scheme handles it best?
    println!(
        "{:<12} {:>8} {:>12} {:>11}",
        "scheme", "misses", "read stall", "efficiency"
    );
    println!(
        "{:<12} {:>8} {:>12} {:>11}",
        "baseline",
        base.read_misses(),
        base.read_stall(),
        "-"
    );
    for scheme in [
        Scheme::Sequential { degree: 1 },
        Scheme::IDetection { degree: 1 },
        Scheme::DDetection { degree: 1 },
    ] {
        let r = System::new(
            SystemConfig::paper_baseline().with_scheme(scheme),
            pipeline(512),
        )
        .run();
        println!(
            "{:<12} {:>8} {:>12} {:>11.2}",
            scheme.to_string(),
            r.read_misses(),
            r.read_stall(),
            r.prefetch_efficiency(),
        );
    }
    println!();
    println!("Consumers stride 6 blocks (3 consumers x 2-block records), so");
    println!("stride detection wins; sequential prefetching only catches the");
    println!("second block of each record.");
}
