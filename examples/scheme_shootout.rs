//! The paper's headline comparison in miniature: all six applications ×
//! all three prefetching schemes (plus the adaptive extension), at small
//! problem sizes so the whole sweep finishes in seconds.
//!
//! Run with: `cargo run --example scheme_shootout --release`

use prefetch_repro::pfsim::{System, SystemConfig};
use prefetch_repro::pfsim_analysis::{compare, RunMetrics};
use prefetch_repro::pfsim_prefetch::Scheme;
use prefetch_repro::pfsim_workloads::App;

fn metrics(app: App, scheme: Scheme) -> RunMetrics {
    System::new(
        SystemConfig::paper_baseline().with_scheme(scheme),
        app.build_default(),
    )
    .run()
    .run_metrics()
}

fn main() {
    let schemes = [
        Scheme::IDetection { degree: 1 },
        Scheme::DDetection { degree: 1 },
        Scheme::Sequential { degree: 1 },
        Scheme::AdaptiveSequential {
            initial_degree: 1,
            max_degree: 8,
        },
    ];

    println!("relative read misses (lower is better; baseline = 1.00)");
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>10}",
        "", "I-det", "D-det", "Seq", "Adapt-Seq"
    );
    let mut wins = [0u32; 4];
    for app in App::ALL {
        let base = metrics(app, Scheme::None);
        let mut row = format!("{:<10}", app.name());
        let mut best = (f64::INFINITY, 0usize);
        for (i, scheme) in schemes.iter().enumerate() {
            let c = compare(&base, &metrics(app, *scheme));
            if c.relative_misses < best.0 {
                best = (c.relative_misses, i);
            }
            row.push_str(&format!(
                " {:>width$.2}",
                c.relative_misses,
                width = if i == 3 { 10 } else { 7 }
            ));
        }
        wins[best.1] += 1;
        println!("{row}");
    }
    println!();
    println!(
        "apps where each scheme removes the most misses: I-det {}, D-det {}, Seq {}, Adapt-Seq {}",
        wins[0], wins[1], wins[2], wins[3]
    );
    println!();
    println!("The paper's conclusion: sequential prefetching does better or the");
    println!("same as stride prefetching in five of the six applications, with");
    println!("Ocean (large strides, low non-stride locality) the exception.");
}
