//! §5.3 interactively: how a finite second-level cache changes the
//! stride/sequential balance. Sweeps SLC capacities on MP3D — the
//! application whose miss mix changes the most — and prints, per size,
//! the replacement-miss share and each scheme's relative misses.
//!
//! Run with: `cargo run --example finite_caches --release`

use prefetch_repro::pfsim::{System, SystemConfig};
use prefetch_repro::pfsim_prefetch::Scheme;
use prefetch_repro::pfsim_workloads::mp3d;

fn workload() -> prefetch_repro::pfsim_workloads::TraceWorkload {
    mp3d::build(mp3d::Mp3dParams {
        particles: 4000,
        cells: 2048,
        steps: 6,
        collision_pct: 50,
        cpus: 16,
    })
}

fn main() {
    println!("MP3D under shrinking second-level caches (cf. Table 3):");
    println!(
        "{:<8} {:>10} {:>8} {:>12} {:>10}",
        "SLC", "misses", "repl %", "I-det rel", "Seq rel"
    );
    for slc_bytes in [0u64, 64 * 1024, 16 * 1024, 8 * 1024] {
        let cfg = |scheme| {
            let c = SystemConfig::paper_baseline().with_scheme(scheme);
            if slc_bytes == 0 {
                c
            } else {
                c.with_finite_slc(slc_bytes)
            }
        };
        let base = System::new(cfg(Scheme::None), workload()).run();
        let idet = System::new(cfg(Scheme::IDetection { degree: 1 }), workload()).run();
        let seq = System::new(cfg(Scheme::Sequential { degree: 1 }), workload()).run();
        let label = if slc_bytes == 0 {
            "inf".to_string()
        } else {
            format!("{}K", slc_bytes / 1024)
        };
        let repl = base.total(|n| n.replacement_misses);
        println!(
            "{:<8} {:>10} {:>7.0}% {:>12.2} {:>10.2}",
            label,
            base.read_misses(),
            100.0 * repl as f64 / base.read_misses().max(1) as f64,
            idet.read_misses() as f64 / base.read_misses() as f64,
            seq.read_misses() as f64 / base.read_misses() as f64,
        );
    }
    println!();
    println!("As the cache shrinks, replacement misses (sequential sweeps of");
    println!("the particle array) dominate, and both schemes — especially the");
    println!("sequential one — cover them: the paper's §5.3 observation.");
}
