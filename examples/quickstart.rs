//! Quickstart: build the paper's baseline machine (Table 1), attach a
//! prefetching scheme, run a workload, and read the statistics.
//!
//! Run with: `cargo run --example quickstart --release`

use prefetch_repro::pfsim::{System, SystemConfig};
use prefetch_repro::pfsim_prefetch::Scheme;
use prefetch_repro::pfsim_workloads::{lu, Workload};

fn main() {
    // The fixed architectural parameters of Table 1.
    let cfg = SystemConfig::paper_baseline();
    println!("Table 1-style configuration:");
    println!("  processors:            {}", cfg.nodes);
    println!("  FLC size:              {} bytes", cfg.flc_bytes);
    println!(
        "  block size:            {} bytes",
        cfg.geometry.block_bytes()
    );
    println!(
        "  FLWB / SLWB entries:   {} / {}",
        cfg.flwb_entries, cfg.slwb_entries
    );
    println!(
        "  read from SLC:         {} pclocks",
        cfg.slc_read_latency()
    );
    println!(
        "  read from local mem:   {} pclocks",
        cfg.local_memory_read_latency()
    );
    println!();

    // A small LU factorization, first on the baseline...
    let workload = lu::build(lu::LuParams { n: 64, cpus: 16 });
    println!(
        "workload: {} ({} ops)",
        workload.name(),
        workload.total_ops()
    );
    let base = System::new(cfg.clone(), workload).run();

    // ...then with degree-1 sequential prefetching.
    let workload = lu::build(lu::LuParams { n: 64, cpus: 16 });
    let seq = System::new(cfg.with_scheme(Scheme::Sequential { degree: 1 }), workload).run();

    println!();
    println!("                     baseline    Seq(d=1)");
    println!(
        "read misses        {:>10} {:>11}",
        base.read_misses(),
        seq.read_misses()
    );
    println!(
        "read stall (pclk)  {:>10} {:>11}",
        base.read_stall(),
        seq.read_stall()
    );
    println!(
        "exec time (pclk)   {:>10} {:>11}",
        base.exec_cycles, seq.exec_cycles
    );
    println!(
        "prefetches issued  {:>10} {:>11}",
        0,
        seq.total(|n| n.prefetches_issued)
    );
    println!(
        "prefetch efficiency{:>10} {:>11.2}",
        "-",
        seq.prefetch_efficiency()
    );
    println!(
        "network flits      {:>10} {:>11}",
        base.net.flits, seq.net.flits
    );
}
