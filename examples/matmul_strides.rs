//! The paper's own motivating example (§3.1, Figure 2): matrix
//! multiplication `C = C + A*B` with row-major matrices. In the inner
//! loop, the reads of `A[i,k]` form a stride sequence of one element
//! (8 bytes — *within* a block), while the reads of `B[k,j]` form a stride
//! sequence of one whole row (N elements). This example builds that loop
//! as a workload, runs all three prefetching schemes on it, and shows how
//! each one handles the two stride sequences.
//!
//! Run with: `cargo run --example matmul_strides --release`

use prefetch_repro::pfsim::{System, SystemConfig};
use prefetch_repro::pfsim_prefetch::Scheme;
use prefetch_repro::pfsim_workloads::{TraceBuilder, TraceWorkload};

/// Builds the Figure-2 triple loop on one processor (the other 15 idle):
/// `for i { for j { for k { C[i,j] += A[i,k] * B[k,j] } } }`, all three
/// matrices row-major N×N doubles.
fn matmul(n: u64) -> TraceWorkload {
    let mut b = TraceBuilder::new(format!("matmul-{n}"), 16);
    let a = b.alloc("A", n * n, 8);
    let bm = b.alloc("B", n * n, 8);
    let c = b.alloc("C", n * n, 8);
    let pc_a = b.pc_site(); // the A[i,k] load: stride = 8 bytes
    let pc_b = b.pc_site(); // the B[k,j] load: stride = N*8 bytes
    let pc_c_r = b.pc_site();
    let pc_c_w = b.pc_site();
    let at = |b: &TraceBuilder, m, i, j| b.element(m, 8, i * n + j);
    for i in 0..n {
        for j in 0..n {
            b.read(0, at(&b, c, i, j), pc_c_r);
            for k in 0..n {
                b.read(0, at(&b, a, i, k), pc_a);
                b.read(0, at(&b, bm, k, j), pc_b);
                b.compute(0, 4);
            }
            b.write(0, at(&b, c, i, j), pc_c_w);
        }
    }
    b.finish()
}

fn main() {
    let n = 64; // row = 512 B = 16 blocks
    println!(
        "Figure 2 matrix multiplication, N = {n} (row stride = {} blocks)",
        n * 8 / 32
    );
    println!();
    println!("A[i,k] forms stride-8B sequences (sub-block: sequential-friendly);");
    println!(
        "B[k,j] forms stride-{}B sequences (large: stride-prefetch territory).",
        n * 8
    );
    println!();

    let baseline = System::new(SystemConfig::paper_baseline(), matmul(n)).run();
    println!(
        "{:<10} misses {:>7}  stall {:>9}  efficiency {:>5}  traffic {:>8}",
        "baseline",
        baseline.read_misses(),
        baseline.read_stall(),
        "-",
        baseline.net.flits,
    );

    for scheme in [
        Scheme::Sequential { degree: 1 },
        Scheme::IDetection { degree: 1 },
        Scheme::DDetection { degree: 1 },
    ] {
        let r = System::new(
            SystemConfig::paper_baseline().with_scheme(scheme),
            matmul(n),
        )
        .run();
        println!(
            "{:<10} misses {:>7}  stall {:>9}  efficiency {:>5.2}  traffic {:>8}",
            scheme.to_string(),
            r.read_misses(),
            r.read_stall(),
            r.prefetch_efficiency(),
            r.net.flits,
        );
    }

    println!();
    println!("What happened: on one processor with an infinite SLC, only cold");
    println!("misses remain, and every block of A, B and C is eventually");
    println!("touched — ideal for sequential prefetching. I-det detects B's");
    println!("row-sized stride immediately, but its prefetches die at page");
    println!(
        "boundaries (a {}-byte stride crosses a 4 KB page every {} accesses),",
        n * 8,
        4096 / (n * 8)
    );
    println!("so it restarts the stream once per page — exactly the paper's");
    println!("point that a stride's *value* matters as much as its existence.");
}
