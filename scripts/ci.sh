#!/usr/bin/env bash
# The full local CI gate: formatting, lints, release build, test suite,
# and the performance smoke test. Run from anywhere inside the repo.
#
# Usage: scripts/ci.sh [--no-perf]
#
#   --no-perf   skip the perfsmoke throughput measurement (the functional
#               gates still run; useful on loaded machines where wall-clock
#               numbers are meaningless)

set -euo pipefail
cd "$(dirname "$0")/.."

run_perf=1
if [[ "${1:-}" == "--no-perf" ]]; then
    run_perf=0
fi

echo "==> experiment binaries use the ExperimentSpec API (no deprecated entry points)"
if grep -rnE 'run_scheme|run_config|run_baseline_recording|characterization_run|run_logged' \
    crates/bench/src/bin/; then
    echo "error: deprecated experiment entry points in crates/bench/src/bin/" >&2
    echo "       (drive runs through ExperimentSpec/Runner instead)" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy (warnings are errors)"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> SKIPPED: cargo clippy is not installed on this toolchain"
fi

echo "==> pfsim-lint (workspace invariants; report -> results/lint.json)"
# The linter exits non-zero on any non-suppressed finding, and validates
# the JSON report it just wrote before exiting (manifest discipline).
mkdir -p results
cargo run -q -p pfsim-lint --release --offline -- --json results/lint.json

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> packed-trace replay determinism"
cargo test -q -p pfsim-bench --release --offline --test packed_replay

echo "==> consistency litmus suite (all schemes x baseline/small-cache)"
cargo test -q -p pfsim-check --release --offline --test litmus

echo "==> pfsim-fuzz --smoke (200 seeded random traces, oracle on)"
./target/release/pfsim-fuzz --smoke

echo "==> warmup-checkpoint determinism gate (snapshot/restore bit-identity)"
# Round-trip equals straight-through — pclock total, per-node stats,
# metrics snapshot, oracle hook stream — across the scheme matrix, plus
# the restore-under-check litmus cell. PFSIM_CHECK=1 makes the spec-level
# test fork a live oracle through every shared checkpoint.
PFSIM_CHECK=1 cargo test -q -p pfsim-bench --release --offline --test checkpoint

echo "==> sharded-kernel determinism gate (full matrix, 1/2/4-thread rotation)"
# Serial vs sharded bit-identity over the whole scheme x app matrix,
# metrics registry included, plus an oracle-on sharded cell (the
# PFSIM_CHECK cell of the grid, judged at 2 threads). The litmus stage
# above already proved the sharded oracle hook stream on every shape.
cargo test -q -p pfsim-bench --release --offline --test sharded -- --include-ignored

if [[ "$run_perf" == 1 ]]; then
    echo "==> perfsmoke (throughput + packed pclock/bytes-per-op + manifest validation)"
    # perfsmoke drives a 24-cell ExperimentSpec end-to-end; --check fails
    # unless the pclock total matches the ledger's seed entry AND the JSON
    # run manifest it just emitted parses, validates, and agrees.
    ./target/release/perfsmoke --label ci --check

    echo "==> perfsmoke under PFSIM_CHECK=1 (oracle on every cell, pclock-neutral)"
    # The oracle's hooks are read-only: the checked run must reproduce the
    # exact same pclock total --check just validated, or checking is
    # perturbing the simulation.
    PFSIM_CHECK=1 ./target/release/perfsmoke --label ci-checked --check

    echo "==> perfsmoke --large (event-kernel-bound grid; ledger BENCH_PR6.json)"
    # The large grid is where the event kernel dominates wall-clock (the
    # sharded kernel's target workload); --check pins its pclock total to
    # the BENCH_PR6.json seed the same way the default grid pins 14059066.
    ./target/release/perfsmoke --large --label ci-large --check
fi

echo "==> CI gate passed"
