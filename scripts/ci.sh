#!/usr/bin/env bash
# The full local CI gate: formatting, lints, release build, test suite,
# and the performance smoke test. Run from anywhere inside the repo.
#
# Usage: scripts/ci.sh [--no-perf]
#
#   --no-perf   skip the perfsmoke throughput measurement (the functional
#               gates still run; useful on loaded machines where wall-clock
#               numbers are meaningless)

set -euo pipefail
cd "$(dirname "$0")/.."

run_perf=1
if [[ "${1:-}" == "--no-perf" ]]; then
    run_perf=0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> packed-trace replay determinism"
cargo test -q -p pfsim-bench --release --offline --test packed_replay

if [[ "$run_perf" == 1 ]]; then
    echo "==> perfsmoke (throughput + packed pclock/bytes-per-op sanity)"
    ./target/release/perfsmoke --label ci --check
fi

echo "==> CI gate passed"
