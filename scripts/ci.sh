#!/usr/bin/env bash
# The full local CI gate: formatting, lints, release build, test suite,
# and the performance smoke test. Run from anywhere inside the repo.
#
# Usage: scripts/ci.sh [--no-perf]
#
#   --no-perf   skip the perfsmoke throughput measurement (the functional
#               gates still run; useful on loaded machines where wall-clock
#               numbers are meaningless)

set -euo pipefail
cd "$(dirname "$0")/.."

run_perf=1
if [[ "${1:-}" == "--no-perf" ]]; then
    run_perf=0
fi

echo "==> no deprecated entry points remain anywhere"
# PR 8 deleted the #[deprecated] experiment shims outright; nothing in
# the workspace may reintroduce the attribute (the lint crate's own
# sources discuss lints by name and are exempt).
if grep -rn '#\[deprecated' crates/ --include='*.rs' | grep -v '^crates/lint/'; then
    echo "error: #[deprecated] shims found — delete the old entry point instead" >&2
    exit 1
fi

echo "==> one CLI parser: binaries parse flags only through pfsim_bench::cli"
# Every bench/serve binary must go through cli::Args so flags and error
# messages stay identical across all of them; direct env::args access
# outside the parser is the regression this guards against.
if grep -rn 'env::args' crates/bench/src crates/serve/src | grep -v 'crates/bench/src/cli.rs'; then
    echo "error: direct env::args access outside pfsim_bench::cli" >&2
    echo "       (parse flags with cli::Args::parse so all binaries speak one CLI)" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy (warnings are errors)"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> SKIPPED: cargo clippy is not installed on this toolchain"
fi

echo "==> pfsim-lint (token + semantic S101-S104; report -> results/lint.json)"
# The linter exits non-zero on any non-suppressed finding, and validates
# the JSON report it just wrote before exiting (manifest discipline).
# The semantic family runs off the workspace symbol model: S101 diffs
# snapshot()/restore() field sets, S102 proves CheckSink hooks reachable,
# S103 holds shard workers to the Fx effect log, S104 diffs wire/manifest
# key sets between emitters and parsers. This stage runs BEFORE the
# build, so deleting a restore field arm or a parser key fails here
# first. The per-file content-hash parse cache keeps the stage warm-fast.
mkdir -p results
cargo run -q -p pfsim-lint --release --offline -- --json results/lint.json
grep -q '"schema": 2' results/lint.json \
    || { echo "FAIL: results/lint.json is not a schema-v2 report"; exit 1; }

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> packed-trace replay determinism"
cargo test -q -p pfsim-bench --release --offline --test packed_replay

echo "==> consistency litmus suite (all schemes x baseline/small-cache)"
cargo test -q -p pfsim-check --release --offline --test litmus

echo "==> modern-family oracle suite (chase/mstride/server x all schemes)"
# One scaled-down cell per modern workload family under every prefetching
# scheme with the oracle judging every load, plus the pinned CHASE
# fuzz-seed set checked serial-vs-sharded.
cargo test -q -p pfsim-check --release --offline --test families

echo "==> pfsim-fuzz --smoke (200 seeded random traces, oracle on)"
./target/release/pfsim-fuzz --smoke

echo "==> warmup-checkpoint determinism gate (snapshot/restore bit-identity)"
# Round-trip equals straight-through — pclock total, per-node stats,
# metrics snapshot, oracle hook stream — across the scheme matrix, plus
# the restore-under-check litmus cell. PFSIM_CHECK=1 makes the spec-level
# test fork a live oracle through every shared checkpoint.
PFSIM_CHECK=1 cargo test -q -p pfsim-bench --release --offline --test checkpoint

echo "==> sharded-kernel determinism gate (full matrix, 1/2/4-thread rotation)"
# Serial vs sharded bit-identity over the whole scheme x app matrix,
# metrics registry included, plus an oracle-on sharded cell (the
# PFSIM_CHECK cell of the grid, judged at 2 threads). The litmus stage
# above already proved the sharded oracle hook stream on every shape.
cargo test -q -p pfsim-bench --release --offline --test sharded -- --include-ignored

echo "==> big-mesh determinism gate (8x8 anchors, 1/2/4-thread rotation, checkpoint)"
# The 64-node machine's pinned per-family pclock anchors, serial vs
# sharded bit-identity for every modern family, and an 8x8 checkpoint
# round-trip. PFSIM_CHECK=1 forks a live consistency oracle through
# every cell of the spec-level grid, which must stay pclock-neutral.
PFSIM_CHECK=1 cargo test -q -p pfsim-bench --release --offline --test bigmesh -- --include-ignored

echo "==> workload characterization (Table 2 methodology on the modern families)"
# Characterizes CHASE/MSTRIDE/SERVER at 4x4, 8x8, and paper scale; the
# binary re-reads and validates the manifest it just wrote, so this
# stage doubles as a manifest-discipline check for the big-mesh grid.
./target/release/workload_char

echo "==> pfsim-serve end-to-end (submit, cache replay, graceful drain)"
# Boots the service on an ephemeral port, submits the 24-cell anchor
# grid twice through pfsim-client, and checks the whole service
# contract: the manifest validates and carries the BENCH_PR1 seed total
# (14059066), the replay is answered 100% from the result cache with
# byte-identical manifest bytes, and SIGTERM drains cleanly.
serve_dir=$(mktemp -d)
./target/release/pfsim-serve --port 0 --port-file "$serve_dir/port" \
    --results-dir "$serve_dir/results" --workers 1 >"$serve_dir/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    [[ -s "$serve_dir/port" ]] && break
    sleep 0.1
done
[[ -s "$serve_dir/port" ]] || { cat "$serve_dir/serve.log" >&2; exit 1; }
serve_port=$(cat "$serve_dir/port")
cat > "$serve_dir/spec.json" <<'SPEC'
{
  "wire_version": 2,
  "name": "ci-serve",
  "size": "default",
  "apps": ["MP3D", "Cholesky", "Water", "LU", "Ocean", "PTHOR"],
  "variants": [
    {"label": "baseline", "scheme": {"kind": "none"}, "config": {}},
    {"label": "I-det(d=1)", "scheme": {"kind": "i-detection", "degree": 1}, "config": {}},
    {"label": "D-det(d=1)", "scheme": {"kind": "d-detection", "degree": 1}, "config": {}},
    {"label": "Seq(d=1)", "scheme": {"kind": "sequential", "degree": 1}, "config": {}}
  ]
}
SPEC
./target/release/pfsim-client --port "$serve_port" submit "$serve_dir/spec.json" \
    --out "$serve_dir/first.json" > "$serve_dir/first.log"
./target/release/pfsim-client --port "$serve_port" submit "$serve_dir/spec.json" \
    --out "$serve_dir/second.json" > "$serve_dir/second.log"
grep -q '"total_pclocks": 14059066' "$serve_dir/first.json" \
    || { echo "error: serve manifest total diverged from the BENCH_PR1 seed" >&2; exit 1; }
cmp "$serve_dir/first.json" "$serve_dir/second.json" \
    || { echo "error: cache replay manifest is not byte-identical" >&2; exit 1; }
grep -q '(24 cache hits, 0 simulated)' "$serve_dir/second.log" \
    || { echo "error: replay was not answered entirely from the result cache" >&2
         cat "$serve_dir/second.log" >&2; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" \
    || { echo "error: pfsim-serve did not drain cleanly on SIGTERM" >&2; exit 1; }
grep -q 'drained' "$serve_dir/serve.log" \
    || { echo "error: drain never logged" >&2; cat "$serve_dir/serve.log" >&2; exit 1; }
rm -rf "$serve_dir"

if [[ "$run_perf" == 1 ]]; then
    echo "==> perfsmoke (throughput + packed pclock/bytes-per-op + manifest validation)"
    # perfsmoke drives a 24-cell ExperimentSpec end-to-end; --check fails
    # unless the pclock total matches the ledger's seed entry AND the JSON
    # run manifest it just emitted parses, validates, and agrees.
    ./target/release/perfsmoke --label ci --check

    echo "==> perfsmoke under PFSIM_CHECK=1 (oracle on every cell, pclock-neutral)"
    # The oracle's hooks are read-only: the checked run must reproduce the
    # exact same pclock total --check just validated, or checking is
    # perturbing the simulation.
    PFSIM_CHECK=1 ./target/release/perfsmoke --label ci-checked --check

    echo "==> perfsmoke --large (event-kernel-bound grid; ledger BENCH_PR6.json)"
    # The large grid is where the event kernel dominates wall-clock (the
    # sharded kernel's target workload); --check pins its pclock total to
    # the BENCH_PR6.json seed the same way the default grid pins 14059066.
    ./target/release/perfsmoke --large --label ci-large --check
fi

echo "==> CI gate passed"
