//! Cross-crate integration tests: the full pipeline from workload
//! generation through simulation to characterization, exercised through
//! the umbrella crate's public API exactly as the examples use it.

use prefetch_repro::pfsim::{RecordMisses, System, SystemConfig};
use prefetch_repro::pfsim_analysis::{characterize, MissEvent};
use prefetch_repro::pfsim_prefetch::Scheme;
use prefetch_repro::pfsim_workloads::{cholesky, lu, mp3d, ocean, pthor, water, TraceWorkload};

/// A named workload factory.
type AppFactory = (&'static str, Box<dyn Fn() -> TraceWorkload>);

/// Small-but-representative versions of all six applications.
fn small_apps() -> Vec<AppFactory> {
    vec![
        (
            "MP3D",
            Box::new(|| {
                mp3d::build(mp3d::Mp3dParams {
                    particles: 800,
                    cells: 512,
                    steps: 3,
                    collision_pct: 50,
                    cpus: 16,
                })
            }),
        ),
        (
            "Cholesky",
            Box::new(|| {
                cholesky::build(cholesky::CholeskyParams {
                    columns: 160,
                    min_height: 12,
                    max_height: 44,
                    supernode: 4,
                    fanout: 6,
                    cpus: 16,
                })
            }),
        ),
        (
            "Water",
            Box::new(|| {
                water::build(water::WaterParams {
                    molecules: 96,
                    steps: 1,
                    mean_run: 8,
                    cpus: 16,
                })
            }),
        ),
        (
            "LU",
            Box::new(|| lu::build(lu::LuParams { n: 48, cpus: 16 })),
        ),
        (
            "Ocean",
            Box::new(|| {
                ocean::build(ocean::OceanParams {
                    n: 32,
                    iterations: 4,
                    band: 8,
                    row_doubles: ocean::ROW_DOUBLES,
                    cpus: 16,
                })
            }),
        ),
        (
            "PTHOR",
            Box::new(|| {
                pthor::build(pthor::PthorParams {
                    elements: 512,
                    tasks_per_cpu: 400,
                    fanout: 3,
                    cpus: 16,
                })
            }),
        ),
    ]
}

const SCHEMES: [Scheme; 4] = [
    Scheme::None,
    Scheme::IDetection { degree: 1 },
    Scheme::DDetection { degree: 1 },
    Scheme::Sequential { degree: 1 },
];

/// Every application runs to completion under every scheme, with sane
/// statistics and intact coherence.
#[test]
fn all_apps_run_under_all_schemes_with_coherence_intact() {
    for (name, build) in small_apps() {
        for scheme in SCHEMES {
            let mut sys = System::new(SystemConfig::paper_baseline().with_scheme(scheme), build());
            let r = sys.run();
            assert!(r.exec_cycles > 0, "{name}/{scheme}");
            assert!(r.read_misses() > 0, "{name}/{scheme}");
            let eff = r.prefetch_efficiency();
            assert!((0.0..=1.0).contains(&eff), "{name}/{scheme}: eff {eff}");
            assert_eq!(r.dir.stale_writebacks, 0, "{name}/{scheme}");
            sys.audit_coherence();
        }
    }
}

/// The same configuration always produces identical results — the
/// program-driven methodology's reproducibility requirement.
#[test]
fn simulation_is_deterministic_across_runs() {
    for (name, build) in small_apps() {
        let run =
            |scheme| System::new(SystemConfig::paper_baseline().with_scheme(scheme), build()).run();
        let a = run(Scheme::Sequential { degree: 1 });
        let b = run(Scheme::Sequential { degree: 1 });
        assert_eq!(a.exec_cycles, b.exec_cycles, "{name}");
        assert_eq!(a.nodes, b.nodes, "{name}");
        assert_eq!(a.net, b.net, "{name}");
    }
}

/// Prefetching never increases the demand-miss count (at worst it leaves
/// it unchanged; merged references become delayed hits instead).
#[test]
fn prefetching_never_increases_miss_count_materially() {
    for (name, build) in small_apps() {
        let base = System::new(SystemConfig::paper_baseline(), build())
            .run()
            .read_misses();
        for scheme in &SCHEMES[1..] {
            let r = System::new(SystemConfig::paper_baseline().with_scheme(*scheme), build()).run();
            // Timing shifts can alter coherence-miss counts slightly, so
            // allow a small tolerance rather than strict monotonicity.
            assert!(
                r.read_misses() <= base + base / 10,
                "{name}/{scheme}: {} vs baseline {base}",
                r.read_misses()
            );
        }
    }
}

/// The finite SLC only adds misses (replacements), never removes them.
#[test]
fn finite_slc_is_never_better_than_infinite() {
    for (name, build) in small_apps() {
        let infinite = System::new(SystemConfig::paper_baseline(), build())
            .run()
            .read_misses();
        let finite = System::new(
            SystemConfig::paper_baseline().with_finite_slc(16 * 1024),
            build(),
        )
        .run();
        assert!(
            finite.read_misses() + finite.read_misses() / 20 >= infinite,
            "{name}: finite {} < infinite {infinite}",
            finite.read_misses()
        );
    }
}

/// The characterization pipeline runs on every application's recorded
/// stream and produces internally consistent numbers.
#[test]
fn characterization_pipeline_is_consistent() {
    for (name, build) in small_apps() {
        let mut sys = System::new(
            SystemConfig::paper_baseline().with_recording(RecordMisses::Cpu(5)),
            build(),
        );
        let r = sys.run();
        let misses: Vec<MissEvent> = r.miss_traces[5]
            .iter()
            .map(|m| MissEvent {
                pc: m.pc,
                block: m.block,
            })
            .collect();
        let ch = characterize(&misses);
        assert_eq!(ch.total_misses as usize, misses.len(), "{name}");
        assert!(ch.misses_in_sequences <= ch.total_misses, "{name}");
        let frac = ch.stride_fraction();
        assert!((0.0..=1.0).contains(&frac), "{name}: {frac}");
        if ch.sequences > 0 {
            assert!(ch.avg_sequence_length() >= 3.0, "{name}");
        }
        let shares: f64 = ch.dominant_strides().iter().map(|(_, s)| s).sum();
        assert!(
            ch.misses_in_sequences == 0 || (shares - 1.0).abs() < 1e-9,
            "{name}: stride shares sum to {shares}"
        );
    }
}

/// Recording all CPUs yields per-node traces whose total matches the
/// aggregate miss counter.
#[test]
fn recorded_traces_match_miss_counters() {
    let (_, build) = &small_apps()[3]; // LU
    let mut sys = System::new(
        SystemConfig::paper_baseline().with_recording(RecordMisses::All),
        build(),
    );
    let r = sys.run();
    let recorded: usize = r.miss_traces.iter().map(Vec::len).sum();
    assert_eq!(recorded as u64, r.read_misses());
}
