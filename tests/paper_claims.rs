//! The paper's headline qualitative claims, asserted as tests on
//! scaled-down inputs. These are the properties a reader of the paper
//! would expect any faithful reimplementation to reproduce:
//!
//! 1. Sequential prefetching removes at least as many misses as stride
//!    prefetching on the short-stride / high-locality applications.
//! 2. Stride prefetching beats sequential prefetching on Ocean (large
//!    strides, low non-stride locality).
//! 3. Neither helps PTHOR much.
//! 4. I-detection has the higher prefetch efficiency on the low-locality
//!    applications (its detection phase is more selective).
//! 5. Sequential prefetching pays more network traffic on the
//!    low-locality applications.
//! 6. Sub-block strides are covered by sequential prefetching (the
//!    "most strides are shorter than the block size" argument).

use prefetch_repro::pfsim::{RecordMisses, SimResult, System, SystemConfig};
use prefetch_repro::pfsim_analysis::{characterize, MissEvent};
use prefetch_repro::pfsim_prefetch::Scheme;
use prefetch_repro::pfsim_workloads::{micro, mp3d, ocean, pthor, App, TraceWorkload};

fn run(wl: TraceWorkload, scheme: Scheme) -> SimResult {
    System::new(SystemConfig::paper_baseline().with_scheme(scheme), wl).run()
}

fn mp3d_small() -> TraceWorkload {
    mp3d::build(mp3d::Mp3dParams {
        particles: 1600,
        cells: 1024,
        steps: 4,
        collision_pct: 50,
        cpus: 16,
    })
}

fn ocean_small() -> TraceWorkload {
    // Ocean's stride advantage needs subgrids tall enough for the
    // column-boundary sequences to be detected, so use the full default
    // size (still subsecond).
    ocean::build(ocean::OceanParams::default())
}

fn pthor_small() -> TraceWorkload {
    pthor::build(pthor::PthorParams {
        elements: 1024,
        tasks_per_cpu: 800,
        fanout: 3,
        cpus: 16,
    })
}

/// The Table 2 signature of every application, within bands: this is the
/// regression guard that keeps the workload models honest. (Ranges are
/// generous — the paper's exact values are recorded in EXPERIMENTS.md.)
#[test]
fn table2_characteristics_stay_in_band() {
    let characterize_app = |app: App| {
        let mut sys = System::new(
            SystemConfig::paper_baseline().with_recording(RecordMisses::Cpu(5)),
            app.build_default(),
        );
        let r = sys.run();
        let misses: Vec<MissEvent> = r.miss_traces[5]
            .iter()
            .map(|m| MissEvent {
                pc: m.pc,
                block: m.block,
            })
            .collect();
        characterize(&misses)
    };

    // MP3D: few stride misses, stride 1 dominant among them.
    let ch = characterize_app(App::Mp3d);
    assert!(
        ch.stride_fraction() < 0.35,
        "MP3D {:.2}",
        ch.stride_fraction()
    );
    assert_eq!(ch.dominant_strides()[0].0, 1, "MP3D");

    // Cholesky: stride-dominated, stride 1.
    let ch = characterize_app(App::Cholesky);
    assert!(
        ch.stride_fraction() > 0.7,
        "Cholesky {:.2}",
        ch.stride_fraction()
    );
    assert_eq!(ch.dominant_strides()[0].0, 1, "Cholesky");

    // Water: stride-dominated with the 21-block molecule stride.
    let ch = characterize_app(App::Water);
    assert!(
        ch.stride_fraction() > 0.7,
        "Water {:.2}",
        ch.stride_fraction()
    );
    assert_eq!(ch.dominant_strides()[0].0, 21, "Water");

    // LU: almost everything in long stride-1 sequences.
    let ch = characterize_app(App::Lu);
    assert!(
        ch.stride_fraction() > 0.85,
        "LU {:.2}",
        ch.stride_fraction()
    );
    assert_eq!(ch.dominant_strides()[0].0, 1, "LU");
    assert!(
        ch.avg_sequence_length() > 10.0,
        "LU {:.1}",
        ch.avg_sequence_length()
    );

    // Ocean: large 65-block strides lead, stride 1 second.
    let ch = characterize_app(App::Ocean);
    assert!(
        ch.stride_fraction() > 0.5,
        "Ocean {:.2}",
        ch.stride_fraction()
    );
    let top: Vec<i64> = ch
        .dominant_strides()
        .iter()
        .take(2)
        .map(|&(s, _)| s)
        .collect();
    assert!(
        top.contains(&65) && top.contains(&1),
        "Ocean top strides {top:?}"
    );
    assert_eq!(top[0], 65, "Ocean must be 65-dominant with an infinite SLC");

    // PTHOR: essentially no stride sequences.
    let ch = characterize_app(App::Pthor);
    assert!(
        ch.stride_fraction() < 0.1,
        "PTHOR {:.2}",
        ch.stride_fraction()
    );
}

/// The Table 3 headline: under a finite 16 KB SLC, Ocean's dominant
/// stride flips from 65 to 1 (replacement misses are sweeps).
#[test]
fn table3_ocean_flips_to_stride_one() {
    let mut sys = System::new(
        SystemConfig::paper_baseline()
            .with_finite_slc(16 * 1024)
            .with_recording(RecordMisses::Cpu(5)),
        App::Ocean.build_default(),
    );
    let r = sys.run();
    let misses: Vec<MissEvent> = r.miss_traces[5]
        .iter()
        .map(|m| MissEvent {
            pc: m.pc,
            block: m.block,
        })
        .collect();
    let ch = characterize(&misses);
    assert_eq!(
        ch.dominant_strides()[0].0,
        1,
        "finite-SLC Ocean must be stride-1 dominant: {}",
        ch.dominant_strides_label()
    );
}

#[test]
fn sequential_beats_stride_on_mp3d() {
    // §5.2: "I-detection and D-detection reduce the number of read misses
    // by only 5% ... Sequential prefetching ... by 28%."
    let base = run(mp3d_small(), Scheme::None).read_misses();
    let idet = run(mp3d_small(), Scheme::IDetection { degree: 1 }).read_misses();
    let seq = run(mp3d_small(), Scheme::Sequential { degree: 1 }).read_misses();
    assert!(seq < idet, "Seq {seq} should beat I-det {idet} on MP3D");
    assert!(
        seq * 100 < base * 90,
        "Seq should remove >10% of MP3D misses: {seq} of {base}"
    );
    assert!(
        idet * 100 > base * 85,
        "stride prefetching should barely help MP3D: {idet} of {base}"
    );
}

#[test]
fn stride_beats_sequential_on_ocean() {
    // §5.2: "For Ocean ... stride prefetching is more effective than
    // sequential prefetching."
    let idet = run(ocean_small(), Scheme::IDetection { degree: 1 }).read_misses();
    let seq = run(ocean_small(), Scheme::Sequential { degree: 1 }).read_misses();
    assert!(idet < seq, "I-det {idet} should beat Seq {seq} on Ocean");
}

#[test]
fn nothing_helps_pthor_much() {
    // §5.2: "For PTHOR, all three techniques perform poorly."
    let base = run(pthor_small(), Scheme::None).read_misses();
    for scheme in [
        Scheme::IDetection { degree: 1 },
        Scheme::DDetection { degree: 1 },
        Scheme::Sequential { degree: 1 },
    ] {
        let misses = run(pthor_small(), scheme).read_misses();
        assert!(
            misses * 100 > base * 80,
            "{scheme} removed too many PTHOR misses: {misses} of {base}"
        );
    }
}

#[test]
fn idetection_is_more_selective_on_low_locality_apps() {
    // §5.2: "I-detection in general has a higher prefetch efficiency ...
    // because it is more selective in the detection phase." The clean
    // cases are MP3D and Ocean; on PTHOR both schemes issue so few useful
    // prefetches that only the traffic difference is robust.
    for (name, wl) in [
        ("MP3D", mp3d_small as fn() -> TraceWorkload),
        ("Ocean", ocean_small),
    ] {
        let idet = run(wl(), Scheme::IDetection { degree: 1 });
        let seq = run(wl(), Scheme::Sequential { degree: 1 });
        assert!(
            idet.prefetch_efficiency() > seq.prefetch_efficiency(),
            "{name}: I-det eff {:.2} vs Seq eff {:.2}",
            idet.prefetch_efficiency(),
            seq.prefetch_efficiency()
        );
    }
    // Sequential prefetching's indiscriminate issue shows up as extra
    // traffic on every low-locality application, PTHOR included.
    for wl in [
        mp3d_small as fn() -> TraceWorkload,
        ocean_small,
        pthor_small,
    ] {
        let idet = run(wl(), Scheme::IDetection { degree: 1 });
        let seq = run(wl(), Scheme::Sequential { degree: 1 });
        assert!(
            seq.net.flits > idet.net.flits,
            "Seq should cost more traffic"
        );
    }
}

#[test]
fn sequential_covers_sub_block_strides() {
    // §1: "most strides are shorter than the block size, which means that
    // sequential prefetching is as effective for stride accesses".
    // A stride-8B stream touches every block in sequence.
    let wl = || micro::stride_stream(16, 8, 1024, 1);
    let base = System::new(SystemConfig::paper_baseline(), wl()).run();
    let seq = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
        wl(),
    )
    .run();
    assert!(
        seq.read_misses() * 5 < base.read_misses(),
        "Seq left {} of {}",
        seq.read_misses(),
        base.read_misses()
    );
}

#[test]
fn idetection_also_covers_sub_block_strides_via_block_grain() {
    // The RPT sees one SLC request per block for a sub-block stride (the
    // FLC absorbs the rest), so it detects the one-block stride and covers
    // the stream too — the paper's framing that both schemes handle short
    // strides.
    let wl = || micro::stride_stream(16, 8, 1024, 1);
    let base = System::new(SystemConfig::paper_baseline(), wl()).run();
    let idet = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::IDetection { degree: 1 }),
        wl(),
    )
    .run();
    assert!(
        idet.read_misses() * 3 < base.read_misses(),
        "I-det left {} of {}",
        idet.read_misses(),
        base.read_misses()
    );
}

#[test]
fn large_strides_defeat_sequential_but_not_stride_prefetching() {
    // §3.4: "sequential prefetching is expected to only capture stride
    // sequences for strides smaller than or equal to the block size".
    let wl = || micro::stride_stream(16, 160, 256, 1); // 5-block stride
    let base = System::new(SystemConfig::paper_baseline(), wl()).run();
    let seq = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::Sequential { degree: 1 }),
        wl(),
    )
    .run();
    let idet = System::new(
        SystemConfig::paper_baseline().with_scheme(Scheme::IDetection { degree: 1 }),
        wl(),
    )
    .run();
    assert!(seq.read_misses() * 10 > base.read_misses() * 9);
    assert!(idet.read_misses() * 2 < base.read_misses());
}
